// Env: filesystem abstraction (RocksDB idiom). The PCR encoder, decoder,
// loader, and KV store perform all I/O through an Env, so the same code runs
// against the real filesystem (PosixEnv) and against a virtual-clock
// simulated device (SimEnv) used to reproduce the paper's bandwidth-bound
// cluster experiments.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace pcr {

/// Random-access read-only file handle.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `n` bytes at `offset` into `scratch` and points `*out` at
  /// the bytes read (which may be fewer than n at EOF).
  virtual Status Read(uint64_t offset, size_t n, char* scratch,
                      Slice* out) const = 0;

  virtual Result<uint64_t> Size() const = 0;
};

/// Append-only writable file handle.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(Slice data) = 0;
  virtual Status Flush() = 0;
  virtual Status Close() = 0;
  /// Bytes appended so far.
  virtual uint64_t BytesWritten() const = 0;
};

/// One contiguous byte range of one file within an asynchronous read.
struct ReadSegment {
  std::string path;
  uint64_t offset = 0;
  uint64_t length = 0;
};

/// One asynchronous read: one or more file ranges whose bytes are delivered
/// concatenated, in segment order, in a single completion. Multi-segment
/// requests let a whole scatter-gather FetchPlan ride one submission (the
/// uring backend turns adjacent segments into one vectored SQE); single-range
/// reads are the common case (see Range()).
struct ReadRequest {
  std::vector<ReadSegment> segments;
  /// Opaque cookie echoed back in the completion so callers can match
  /// out-of-order completions to their submissions.
  uint64_t user_data = 0;

  uint64_t total_length() const {
    uint64_t n = 0;
    for (const ReadSegment& s : segments) n += s.length;
    return n;
  }

  static ReadRequest Range(std::string path, uint64_t offset, uint64_t length,
                           uint64_t user_data = 0) {
    ReadRequest request;
    request.segments.push_back({std::move(path), offset, length});
    request.user_data = user_data;
    return request;
  }
};

/// The outcome of one submitted read. A read shorter than the requested
/// length (EOF, truncated file) completes with an IOError status: callers of
/// the async path always know the exact byte count they asked for.
struct ReadCompletion {
  uint64_t user_data = 0;
  Status status;      // Non-OK when the read failed (`bytes` is empty).
  std::string bytes;  // Exactly `request.total_length()` bytes on success.
};

/// Which mechanism serves a scheduler's reads. kAuto applies the
/// PCR_FORCE_IO={sync,threads,uring} override, then picks uring when the
/// build and kernel support it, else the pread-thread backend.
enum class IoBackend { kAuto = 0, kSync, kThreads, kUring };

/// Cumulative kernel-interaction counters a scheduler keeps so callers (the
/// loader's StageStats, benches) can report submitted-batch sizes and
/// syscalls per record. `ops` counts kernel-visible read operations (preads
/// issued, SQEs queued); `submits` counts submission boundaries (one per
/// batched ring flush, one per op for pread backends); `syscalls` counts
/// I/O syscalls actually made (pread and io_uring_enter calls — virtual
/// devices report 0).
struct IoSchedulerStats {
  int64_t requests = 0;
  int64_t segments = 0;
  int64_t ops = 0;
  int64_t submits = 0;
  int64_t syscalls = 0;
  /// Transparent resubmissions of transient failures (only the retrying
  /// wrapper in storage/io_retry.h counts these; raw backends report 0).
  int64_t retries = 0;
};

struct IoSchedulerOptions {
  /// Reads submitted but not yet returned by Wait/PollCompletion. SubmitRead
  /// on a full scheduler blocks until a completion is consumed (PosixEnv) or
  /// fails with ResourceExhausted (schedulers that cannot block, e.g. the
  /// single-threaded SimEnv model).
  int queue_depth = 16;
  /// Internal service threads (pread backend; schedulers without real
  /// threads ignore it). Each blocked pread occupies one, so keeping
  /// `queue_depth` reads genuinely in flight needs `io_threads >=
  /// queue_depth`.
  int io_threads = 2;
  /// uring: SQEs accumulated in the submission queue before one
  /// io_uring_enter flushes them (Wait/PollCompletion flush early, so
  /// batching never delays a read the caller is waiting on).
  int submit_batch = 4;
  /// uring: when non-zero, register `queue_depth` kernel-pinned buffers of
  /// this size and serve reads that fit through IORING_OP_READ_FIXED
  /// (bytes are copied out at completion). Zero reads directly into the
  /// completion's storage with vectored SQEs.
  size_t fixed_buffer_bytes = 0;
  /// Backend selection (PosixEnv; other Envs ignore it). kAuto resolves
  /// PCR_FORCE_IO and falls back from uring to threads when unsupported.
  IoBackend backend = IoBackend::kAuto;
};

/// io_uring-style submission/completion read interface. One scheduler is
/// owned by one submitting thread (submission and completion calls are not
/// synchronized against each other); the I/O behind it may be served by
/// internal threads (PosixEnv) or by a device model (SimEnv). Destroying a
/// scheduler with reads still in flight is safe: outstanding work is drained
/// and discarded.
class IoScheduler {
 public:
  virtual ~IoScheduler() = default;

  /// Queues one read. The request's failure (missing file, short read, I/O
  /// error) is reported on its completion, not here; SubmitRead itself only
  /// fails when the scheduler is full or shut down.
  virtual Status SubmitRead(ReadRequest request) = 0;

  /// Blocks until a completion is available and returns it. Completions may
  /// arrive in any order; match them via `user_data`. Calling with nothing
  /// in flight is an error (FailedPrecondition) rather than a deadlock.
  virtual Result<ReadCompletion> WaitCompletion() = 0;

  /// Non-blocking: a completion if one is already available.
  virtual std::optional<ReadCompletion> PollCompletion() = 0;

  /// Bounded wait: a completion if one arrives within `timeout_nanos`,
  /// nullopt on timeout. Like WaitCompletion, calling with nothing in flight
  /// is a FailedPrecondition error. Backends whose reads can wedge (a stuck
  /// NFS pread, an injected stall) override this so callers — pipeline
  /// teardown, hedged-read deadlines — never block unboundedly; the base
  /// implementation polls on a short real-time cadence.
  virtual Result<std::optional<ReadCompletion>> WaitCompletionFor(
      int64_t timeout_nanos);

  /// Reads submitted but not yet handed back through Wait/PollCompletion.
  virtual int in_flight() const = 0;

  /// Short tag naming the mechanism behind this scheduler ("sync",
  /// "threads", "uring", "sim").
  virtual const char* backend_name() const { return "unknown"; }

  /// Cumulative kernel-interaction counters (see IoSchedulerStats).
  virtual IoSchedulerStats stats() const { return {}; }
};

/// Filesystem + clock environment.
class Env {
 public:
  virtual ~Env() = default;

  virtual Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) = 0;
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> GetFileSize(const std::string& path) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  /// Creates a directory (and parents). OK if it already exists.
  virtual Status CreateDir(const std::string& path) = 0;
  /// Lists immediate children (names, not full paths), sorted.
  virtual Result<std::vector<std::string>> ListDir(const std::string& path) = 0;

  /// Creates a submission/completion read scheduler over this Env. The base
  /// implementation is a synchronous fallback (each SubmitRead performs the
  /// read inline, so concurrency degenerates to 1); PosixEnv overrides it
  /// with a threaded cached-fd pread backend and SimEnv with an overlapped
  /// virtual-device model.
  virtual std::unique_ptr<IoScheduler> NewIoScheduler(
      const IoSchedulerOptions& options);

  /// The time source all simulated I/O charges against.
  virtual Clock* clock() = 0;

  /// Convenience: whole-file read/write.
  Status ReadFileToString(const std::string& path, std::string* out);
  Status WriteStringToFile(const std::string& path, Slice data);

  /// Convenience: exactly `length` bytes at `offset` into *out (a read past
  /// EOF is an IOError, like the async completions report it).
  Status ReadRange(const std::string& path, uint64_t offset, uint64_t length,
                   std::string* out);

  /// Process-wide PosixEnv singleton.
  static Env* Default();
};

}  // namespace pcr
