// Env: filesystem abstraction (RocksDB idiom). The PCR encoder, decoder,
// loader, and KV store perform all I/O through an Env, so the same code runs
// against the real filesystem (PosixEnv) and against a virtual-clock
// simulated device (SimEnv) used to reproduce the paper's bandwidth-bound
// cluster experiments.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace pcr {

/// Random-access read-only file handle.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `n` bytes at `offset` into `scratch` and points `*out` at
  /// the bytes read (which may be fewer than n at EOF).
  virtual Status Read(uint64_t offset, size_t n, char* scratch,
                      Slice* out) const = 0;

  virtual Result<uint64_t> Size() const = 0;
};

/// Append-only writable file handle.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(Slice data) = 0;
  virtual Status Flush() = 0;
  virtual Status Close() = 0;
  /// Bytes appended so far.
  virtual uint64_t BytesWritten() const = 0;
};

/// Filesystem + clock environment.
class Env {
 public:
  virtual ~Env() = default;

  virtual Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) = 0;
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> GetFileSize(const std::string& path) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  /// Creates a directory (and parents). OK if it already exists.
  virtual Status CreateDir(const std::string& path) = 0;
  /// Lists immediate children (names, not full paths), sorted.
  virtual Result<std::vector<std::string>> ListDir(const std::string& path) = 0;

  /// The time source all simulated I/O charges against.
  virtual Clock* clock() = 0;

  /// Convenience: whole-file read/write.
  Status ReadFileToString(const std::string& path, std::string* out);
  Status WriteStringToFile(const std::string& path, Slice data);

  /// Process-wide PosixEnv singleton.
  static Env* Default();
};

}  // namespace pcr
