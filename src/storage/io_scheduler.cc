// Default (synchronous) IoScheduler: the fallback behind
// Env::NewIoScheduler for Envs without a native async backend. SubmitRead
// performs the read inline on the submitting thread and queues the
// completion, so the submission/completion API works against any Env while
// real overlap remains the PosixEnv / SimEnv overrides' job.
#include <chrono>
#include <deque>
#include <thread>

#include "storage/env.h"

namespace pcr {

namespace {

class SyncIoScheduler : public IoScheduler {
 public:
  SyncIoScheduler(Env* env, IoSchedulerOptions options)
      : env_(env), options_(options) {}

  Status SubmitRead(ReadRequest request) override {
    if (static_cast<int>(completions_.size()) >= options_.queue_depth) {
      return Status::ResourceExhausted("io scheduler full");
    }
    ++stats_.requests;
    stats_.segments += static_cast<int64_t>(request.segments.size());
    ReadCompletion completion;
    completion.user_data = request.user_data;
    completion.bytes.reserve(request.total_length());
    // One blocking read per segment; syscall accounting is approximate (each
    // ReadRange is at least one pread behind a cached descriptor).
    for (const ReadSegment& segment : request.segments) {
      ++stats_.ops;
      ++stats_.submits;
      ++stats_.syscalls;
      std::string part;
      completion.status =
          env_->ReadRange(segment.path, segment.offset, segment.length, &part);
      if (!completion.status.ok()) break;
      completion.bytes += part;
    }
    if (!completion.status.ok()) completion.bytes.clear();
    completions_.push_back(std::move(completion));
    return Status::OK();
  }

  Result<ReadCompletion> WaitCompletion() override {
    if (completions_.empty()) {
      return Status::FailedPrecondition("no reads in flight");
    }
    ReadCompletion completion = std::move(completions_.front());
    completions_.pop_front();
    return completion;
  }

  std::optional<ReadCompletion> PollCompletion() override {
    if (completions_.empty()) return std::nullopt;
    ReadCompletion completion = std::move(completions_.front());
    completions_.pop_front();
    return completion;
  }

  int in_flight() const override {
    return static_cast<int>(completions_.size());
  }

  const char* backend_name() const override { return "sync"; }

  IoSchedulerStats stats() const override { return stats_; }

 private:
  Env* env_;
  IoSchedulerOptions options_;
  std::deque<ReadCompletion> completions_;
  IoSchedulerStats stats_;
};

}  // namespace

Result<std::optional<ReadCompletion>> IoScheduler::WaitCompletionFor(
    int64_t timeout_nanos) {
  if (in_flight() == 0) {
    return Status::FailedPrecondition("no reads in flight");
  }
  // Generic poll-on-a-cadence fallback: correct for any backend, and cheap
  // for the ones (sync, sim) whose PollCompletion returns immediately.
  // Backends with a native blocking wait override this.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(timeout_nanos);
  for (;;) {
    if (std::optional<ReadCompletion> completion = PollCompletion()) {
      return std::optional<ReadCompletion>(std::move(*completion));
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return std::optional<ReadCompletion>(std::nullopt);
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

Status Env::ReadRange(const std::string& path, uint64_t offset,
                      uint64_t length, std::string* out) {
  PCR_ASSIGN_OR_RETURN(auto file, NewRandomAccessFile(path));
  out->resize(length);
  Slice result;
  PCR_RETURN_IF_ERROR(file->Read(offset, length, out->data(), &result));
  if (result.size() != length) {
    return Status::IOError("short read of " + path);
  }
  if (result.data() != out->data()) {
    out->assign(result.data(), result.size());
  }
  return Status::OK();
}

std::unique_ptr<IoScheduler> Env::NewIoScheduler(
    const IoSchedulerOptions& options) {
  return std::make_unique<SyncIoScheduler>(this, options);
}

}  // namespace pcr
