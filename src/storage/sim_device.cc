#include "storage/sim_device.h"

namespace pcr {

DeviceProfile DeviceProfile::Hdd7200() {
  DeviceProfile p;
  p.name = "hdd7200";
  p.read_bandwidth_bytes_per_sec = 180.0 * (1 << 20);
  p.write_bandwidth_bytes_per_sec = 160.0 * (1 << 20);
  p.seek_latency_sec = 8.5e-3;
  p.per_op_latency_sec = 50e-6;
  return p;
}

DeviceProfile DeviceProfile::SataSsd() {
  DeviceProfile p;
  p.name = "sata_ssd";
  p.read_bandwidth_bytes_per_sec = 400.0 * (1 << 20);
  p.write_bandwidth_bytes_per_sec = 350.0 * (1 << 20);
  p.seek_latency_sec = 60e-6;
  p.per_op_latency_sec = 20e-6;
  return p;
}

DeviceProfile DeviceProfile::CephCluster() {
  DeviceProfile p;
  p.name = "ceph_cluster";
  p.read_bandwidth_bytes_per_sec = 450.0 * (1 << 20);
  p.write_bandwidth_bytes_per_sec = 400.0 * (1 << 20);
  p.seek_latency_sec = 5e-3;   // OSD-side HDD seek, amortized over stripes.
  p.per_op_latency_sec = 250e-6;  // Network round trip.
  return p;
}

DeviceProfile DeviceProfile::Ram() {
  DeviceProfile p;
  p.name = "ram";
  p.read_bandwidth_bytes_per_sec = 20.0 * (1ULL << 30);
  p.write_bandwidth_bytes_per_sec = 20.0 * (1ULL << 30);
  p.seek_latency_sec = 0.0;
  p.per_op_latency_sec = 0.0;
  return p;
}

double SimDevice::ChargeRead(uint64_t stream_id, uint64_t offset,
                             uint64_t bytes) {
  double cost;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cost = profile_.per_op_latency_sec;
    const bool sequential =
        stream_id == last_stream_ && offset == next_sequential_offset_;
    if (!sequential) {
      cost += profile_.seek_latency_sec;
      ++stats_.seeks;
    }
    cost += static_cast<double>(bytes) /
            ReadBandwidthLocked(clock_->NowNanos());
    last_stream_ = stream_id;
    next_sequential_offset_ = offset + bytes;

    ++stats_.read_ops;
    stats_.bytes_read += static_cast<int64_t>(bytes);
    stats_.busy_seconds += cost;
  }
  clock_->SleepNanos(SecondsToNanos(cost));
  return cost;
}

double SimDevice::ChargeWrite(uint64_t bytes) {
  const double cost =
      profile_.per_op_latency_sec +
      static_cast<double>(bytes) / profile_.write_bandwidth_bytes_per_sec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.write_ops;
    stats_.bytes_written += static_cast<int64_t>(bytes);
    stats_.busy_seconds += cost;
  }
  clock_->SleepNanos(SecondsToNanos(cost));
  return cost;
}

int64_t SimDevice::SubmitOverlappedRead(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now = clock_->NowNanos();
  const int64_t fixed = SecondsToNanos(profile_.seek_latency_sec +
                                       profile_.per_op_latency_sec);
  const int64_t transfer =
      SecondsToNanos(static_cast<double>(bytes) / ReadBandwidthLocked(now));
  // The request's fixed phase runs off-medium; its transfer starts when both
  // the fixed phase is done and the medium frees.
  const int64_t start = std::max(now + fixed, transfer_free_nanos_);
  const int64_t done = start + transfer;
  transfer_free_nanos_ = done;
  // Overlapped reads are random access; the next blocking read never
  // continues them sequentially.
  last_stream_ = ~0ULL;

  ++stats_.read_ops;
  ++stats_.seeks;
  stats_.bytes_read += static_cast<int64_t>(bytes);
  stats_.busy_seconds += NanosToSeconds(fixed + transfer);
  return done;
}

void SimDevice::SetSchedule(std::vector<DevicePhase> phases) {
  std::lock_guard<std::mutex> lock(mu_);
  schedule_ = std::move(phases);
  schedule_epoch_nanos_ = clock_->NowNanos();
}

const DevicePhase* SimDevice::ActivePhaseLocked(int64_t now_nanos) const {
  const double t = NanosToSeconds(now_nanos - schedule_epoch_nanos_);
  const DevicePhase* active = nullptr;
  for (const DevicePhase& phase : schedule_) {
    if (t < phase.start_sec) continue;
    if (phase.duration_sec > 0 && t >= phase.start_sec + phase.duration_sec) {
      continue;
    }
    active = &phase;  // Last listed active phase wins.
  }
  return active;
}

double SimDevice::ReadBandwidthLocked(int64_t now_nanos) const {
  const DevicePhase* phase = ActivePhaseLocked(now_nanos);
  const double factor =
      phase != nullptr && phase->bandwidth_factor > 0 ? phase->bandwidth_factor
                                                      : 1.0;
  return profile_.read_bandwidth_bytes_per_sec * factor;
}

bool SimDevice::ReadFailsNow() const {
  std::lock_guard<std::mutex> lock(mu_);
  const DevicePhase* phase = ActivePhaseLocked(clock_->NowNanos());
  return phase != nullptr && phase->fail_reads;
}

void SimDevice::RecordFailedRead() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.failed_reads;
}

DeviceStats SimDevice::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SimDevice::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = DeviceStats{};
}

}  // namespace pcr
