#include "storage/sim_device.h"

namespace pcr {

DeviceProfile DeviceProfile::Hdd7200() {
  DeviceProfile p;
  p.name = "hdd7200";
  p.read_bandwidth_bytes_per_sec = 180.0 * (1 << 20);
  p.write_bandwidth_bytes_per_sec = 160.0 * (1 << 20);
  p.seek_latency_sec = 8.5e-3;
  p.per_op_latency_sec = 50e-6;
  return p;
}

DeviceProfile DeviceProfile::SataSsd() {
  DeviceProfile p;
  p.name = "sata_ssd";
  p.read_bandwidth_bytes_per_sec = 400.0 * (1 << 20);
  p.write_bandwidth_bytes_per_sec = 350.0 * (1 << 20);
  p.seek_latency_sec = 60e-6;
  p.per_op_latency_sec = 20e-6;
  return p;
}

DeviceProfile DeviceProfile::CephCluster() {
  DeviceProfile p;
  p.name = "ceph_cluster";
  p.read_bandwidth_bytes_per_sec = 450.0 * (1 << 20);
  p.write_bandwidth_bytes_per_sec = 400.0 * (1 << 20);
  p.seek_latency_sec = 5e-3;   // OSD-side HDD seek, amortized over stripes.
  p.per_op_latency_sec = 250e-6;  // Network round trip.
  return p;
}

DeviceProfile DeviceProfile::Ram() {
  DeviceProfile p;
  p.name = "ram";
  p.read_bandwidth_bytes_per_sec = 20.0 * (1ULL << 30);
  p.write_bandwidth_bytes_per_sec = 20.0 * (1ULL << 30);
  p.seek_latency_sec = 0.0;
  p.per_op_latency_sec = 0.0;
  return p;
}

double SimDevice::ChargeRead(uint64_t stream_id, uint64_t offset,
                             uint64_t bytes) {
  double cost = profile_.per_op_latency_sec;
  const bool sequential =
      stream_id == last_stream_ && offset == next_sequential_offset_;
  if (!sequential) {
    cost += profile_.seek_latency_sec;
    ++stats_.seeks;
  }
  cost += static_cast<double>(bytes) / profile_.read_bandwidth_bytes_per_sec;
  last_stream_ = stream_id;
  next_sequential_offset_ = offset + bytes;

  ++stats_.read_ops;
  stats_.bytes_read += static_cast<int64_t>(bytes);
  stats_.busy_seconds += cost;
  clock_->SleepNanos(SecondsToNanos(cost));
  return cost;
}

double SimDevice::ChargeWrite(uint64_t bytes) {
  const double cost =
      profile_.per_op_latency_sec +
      static_cast<double>(bytes) / profile_.write_bandwidth_bytes_per_sec;
  ++stats_.write_ops;
  stats_.bytes_written += static_cast<int64_t>(bytes);
  stats_.busy_seconds += cost;
  clock_->SleepNanos(SecondsToNanos(cost));
  return cost;
}

}  // namespace pcr
