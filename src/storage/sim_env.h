// SimEnv: an in-memory filesystem whose reads and writes charge a SimDevice
// against a (usually virtual) clock. Running the PCR loader on a SimEnv with
// the CephCluster profile reproduces the paper's storage-bound training
// cluster at simulation speed.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "storage/env.h"
#include "storage/sim_device.h"

namespace pcr {

/// In-memory Env with simulated I/O cost. Single device shared by all files
/// (like one disk / one storage pool). Thread-safe for metadata and device
/// accounting; a VirtualClock additionally requires a single-threaded
/// driver (multi-threaded use needs a RealClock).
class SimEnv : public Env {
 public:
  /// Does not take ownership of `clock`.
  SimEnv(DeviceProfile profile, Clock* clock);
  ~SimEnv() override = default;

  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status CreateDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  /// Overlapped in-flight reads against the virtual device: fixed per-read
  /// costs (seek + request setup) hide behind other in-flight transfers
  /// while the transfers share the device bandwidth, so a deeper window
  /// raises throughput toward the bandwidth ceiling and window 1 reproduces
  /// the blocking-read cost exactly (SimDevice::SubmitOverlappedRead).
  std::unique_ptr<IoScheduler> NewIoScheduler(
      const IoSchedulerOptions& options) override;
  Clock* clock() override { return device_.clock(); }

  SimDevice* device() { return &device_; }

  /// Copies a file tree from another Env into this one (e.g. stage a dataset
  /// built on PosixEnv into the simulated cluster). `src_dir` is recursed.
  Status ImportTree(Env* src, const std::string& src_dir,
                    const std::string& dst_dir);

  /// Total bytes held by all files.
  uint64_t TotalBytes() const;

 private:
  friend class SimRandomAccessFile;
  friend class SimWritableFile;
  friend class SimIoScheduler;

  struct FileNode {
    std::shared_ptr<std::string> data;
    uint64_t stream_id;
  };

  /// Snapshot of a file's contents for the async scheduler (no device
  /// charge; the scheduler charges the overlapped-read model itself).
  Result<std::shared_ptr<std::string>> FileData(const std::string& path) const;

  mutable std::mutex mu_;
  SimDevice device_;
  std::map<std::string, FileNode> files_;
  std::map<std::string, bool> dirs_;
  uint64_t next_stream_id_ = 1;
};

}  // namespace pcr
