// SimEnv: an in-memory filesystem whose reads and writes charge a SimDevice
// against a (usually virtual) clock. Running the PCR loader on a SimEnv with
// the CephCluster profile reproduces the paper's storage-bound training
// cluster at simulation speed.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "storage/env.h"
#include "storage/sim_device.h"

namespace pcr {

/// In-memory Env with simulated I/O cost. Single device shared by all files
/// (like one disk / one storage pool). Thread-safe for metadata; time
/// accounting assumes externally-ordered access, which holds for the
/// single-threaded simulation driver.
class SimEnv : public Env {
 public:
  /// Does not take ownership of `clock`.
  SimEnv(DeviceProfile profile, Clock* clock);
  ~SimEnv() override = default;

  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status CreateDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  Clock* clock() override { return device_.clock(); }

  SimDevice* device() { return &device_; }

  /// Copies a file tree from another Env into this one (e.g. stage a dataset
  /// built on PosixEnv into the simulated cluster). `src_dir` is recursed.
  Status ImportTree(Env* src, const std::string& src_dir,
                    const std::string& dst_dir);

  /// Total bytes held by all files.
  uint64_t TotalBytes() const;

 private:
  friend class SimRandomAccessFile;
  friend class SimWritableFile;

  struct FileNode {
    std::shared_ptr<std::string> data;
    uint64_t stream_id;
  };

  mutable std::mutex mu_;
  SimDevice device_;
  std::map<std::string, FileNode> files_;
  std::map<std::string, bool> dirs_;
  uint64_t next_stream_id_ = 1;
};

}  // namespace pcr
