#include "storage/io_backend.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "storage/uring_io.h"
#include "util/logging.h"

namespace pcr {

const char* IoBackendName(IoBackend backend) {
  switch (backend) {
    case IoBackend::kAuto:
      return "auto";
    case IoBackend::kSync:
      return "sync";
    case IoBackend::kThreads:
      return "threads";
    case IoBackend::kUring:
      return "uring";
  }
  return "unknown";
}

bool ParseIoBackend(const char* s, IoBackend* out) {
  if (s == nullptr) return false;
  for (IoBackend backend :
       {IoBackend::kSync, IoBackend::kThreads, IoBackend::kUring}) {
    if (std::strcmp(s, IoBackendName(backend)) == 0) {
      *out = backend;
      return true;
    }
  }
  return false;
}

bool UringIoSupported() { return UringProbe(); }

IoBackend ResolveIoBackend(const char* force, bool uring_supported,
                           std::string* warning) {
  const IoBackend fallback =
      uring_supported ? IoBackend::kUring : IoBackend::kThreads;
  if (force == nullptr || force[0] == '\0') return fallback;
  IoBackend forced;
  if (!ParseIoBackend(force, &forced)) {
    if (warning != nullptr) {
      *warning = std::string("PCR_FORCE_IO=\"") + force +
                 "\" is not one of sync/threads/uring; using " +
                 IoBackendName(fallback);
    }
    return fallback;
  }
  if (forced == IoBackend::kUring && !uring_supported) {
    if (warning != nullptr) {
      *warning =
          "PCR_FORCE_IO=uring is not supported by this build/kernel; "
          "using threads";
    }
    return IoBackend::kThreads;
  }
  return forced;
}

namespace {
// kAuto (0) doubles as "not yet resolved"; resolution never returns kAuto.
std::atomic<IoBackend> g_active{IoBackend::kAuto};
}  // namespace

IoBackend ActiveIoBackend() {
  IoBackend backend = g_active.load(std::memory_order_acquire);
  if (backend != IoBackend::kAuto) return backend;
  // Racing threads resolve to the same value; the store is idempotent.
  std::string warning;
  backend = ResolveIoBackend(std::getenv("PCR_FORCE_IO"), UringIoSupported(),
                             &warning);
  if (!warning.empty()) PCR_LOG(Warning) << warning;
  g_active.store(backend, std::memory_order_release);
  return backend;
}

void ResetIoBackendForTest() {
  g_active.store(IoBackend::kAuto, std::memory_order_release);
}

}  // namespace pcr
