// KvStore: a small embedded log-structured key-value store. Plays the role
// SQLite/RocksDB play in the paper's implementation ("SQLite and RocksDB are
// supported backing databases") as the PCR metadata database: per-record scan
// group offsets, labels, and dataset manifest entries.
//
// Design: a single append-only log of CRC-checksummed records plus an
// in-memory index rebuilt on open. Deletes are tombstones; Compact() rewrites
// the live set. This matches the access pattern PCR needs — tiny values,
// point lookups, prefix scans — while exercising real durability concerns
// (corruption detection, atomic rewrite via rename).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/env.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace pcr {

/// Statistics about a store's log.
struct KvStats {
  uint64_t live_keys = 0;
  uint64_t log_bytes = 0;
  uint64_t log_records = 0;  // Including overwritten and tombstoned ones.
};

/// An embedded KV store bound to one log file on an Env.
///
/// Thread-safe. Typical PCR usage:
///   auto db = KvStore::Open(env, dir + "/metadata.kvlog").MoveValue();
///   db->Put("record/000017/offsets", serialized_offsets);
class KvStore {
 public:
  /// Opens (creating if absent) the store at `path`, replaying the log.
  /// Corrupt tail records are detected via CRC and reported as an error;
  /// pass `truncate_corrupt_tail=true` to recover by dropping them.
  static Result<std::unique_ptr<KvStore>> Open(
      Env* env, const std::string& path, bool truncate_corrupt_tail = false);

  ~KvStore();

  Status Put(Slice key, Slice value);
  Status Delete(Slice key);
  /// Fails with NotFound for missing keys.
  Result<std::string> Get(Slice key) const;
  bool Contains(Slice key) const;

  /// All live keys with the given prefix, in lexicographic order.
  std::vector<std::string> ScanPrefix(Slice prefix) const;

  /// All live (key, value) pairs with the given prefix.
  std::vector<std::pair<std::string, std::string>> ScanPrefixEntries(
      Slice prefix) const;

  /// Rewrites the log keeping only live entries, atomically replacing it.
  Status Compact();

  /// Forces buffered appends to the Env.
  Status Flush();

  KvStats stats() const;

 private:
  KvStore(Env* env, std::string path);

  Status ReplayLog(bool truncate_corrupt_tail);
  Status AppendRecord(uint8_t type, Slice key, Slice value);

  Env* env_;
  std::string path_;
  mutable std::mutex mu_;
  std::unique_ptr<WritableFile> log_;
  std::map<std::string, std::string> index_;
  uint64_t log_records_ = 0;
};

}  // namespace pcr
