#include "kv/kv_store.h"

#include <cstring>

#include "util/crc32c.h"
#include "util/logging.h"
#include "wire/wire.h"

namespace pcr {

namespace {
constexpr uint8_t kTypePut = 1;
constexpr uint8_t kTypeDelete = 2;
}  // namespace

KvStore::KvStore(Env* env, std::string path)
    : env_(env), path_(std::move(path)) {}

KvStore::~KvStore() {
  if (log_ != nullptr) {
    log_->Close().ok();
  }
}

Result<std::unique_ptr<KvStore>> KvStore::Open(Env* env,
                                               const std::string& path,
                                               bool truncate_corrupt_tail) {
  std::unique_ptr<KvStore> store(new KvStore(env, path));
  if (env->FileExists(path)) {
    PCR_RETURN_IF_ERROR(store->ReplayLog(truncate_corrupt_tail));
    // Reopen for append by rewriting the live state: Env files are
    // truncate-on-create, so compaction doubles as the append reopen.
    PCR_RETURN_IF_ERROR(store->Compact());
  } else {
    PCR_ASSIGN_OR_RETURN(store->log_, env->NewWritableFile(path));
  }
  return store;
}

Status KvStore::ReplayLog(bool truncate_corrupt_tail) {
  std::string data;
  PCR_RETURN_IF_ERROR(env_->ReadFileToString(path_, &data));
  Slice input(data);
  while (!input.empty()) {
    // Record: masked_crc(4) | type(1) | klen varint | vlen varint | k | v
    if (input.size() < 5) {
      if (truncate_corrupt_tail) break;
      return Status::Corruption("kv log: truncated record header");
    }
    uint32_t masked_crc;
    memcpy(&masked_crc, input.data(), 4);
    Slice body = input;
    body.RemovePrefix(4);

    const uint8_t type = static_cast<uint8_t>(body[0]);
    Slice cursor = body;
    cursor.RemovePrefix(1);
    uint64_t klen, vlen;
    if (!wire::GetVarint(&cursor, &klen) || !wire::GetVarint(&cursor, &vlen) ||
        cursor.size() < klen + vlen) {
      if (truncate_corrupt_tail) break;
      return Status::Corruption("kv log: truncated record body");
    }
    const size_t body_len =
        1 + wire::VarintLength(klen) + wire::VarintLength(vlen) +
        static_cast<size_t>(klen + vlen);
    const uint32_t actual_crc = crc32c::Value(body.data(), body_len);
    if (crc32c::Unmask(masked_crc) != actual_crc) {
      if (truncate_corrupt_tail) break;
      return Status::Corruption("kv log: checksum mismatch");
    }
    const std::string key(cursor.data(), klen);
    if (type == kTypePut) {
      index_[key] = std::string(cursor.data() + klen, vlen);
    } else if (type == kTypeDelete) {
      index_.erase(key);
    } else {
      if (truncate_corrupt_tail) break;
      return Status::Corruption("kv log: unknown record type");
    }
    ++log_records_;
    input.RemovePrefix(4 + body_len);
  }
  return Status::OK();
}

Status KvStore::AppendRecord(uint8_t type, Slice key, Slice value) {
  std::string body;
  body.push_back(static_cast<char>(type));
  wire::PutVarint(&body, key.size());
  wire::PutVarint(&body, value.size());
  body.append(key.data(), key.size());
  body.append(value.data(), value.size());
  const uint32_t masked = crc32c::Mask(crc32c::Value(body.data(), body.size()));
  char crc_buf[4];
  memcpy(crc_buf, &masked, 4);
  PCR_RETURN_IF_ERROR(log_->Append(Slice(crc_buf, 4)));
  PCR_RETURN_IF_ERROR(log_->Append(Slice(body)));
  ++log_records_;
  return Status::OK();
}

Status KvStore::Put(Slice key, Slice value) {
  std::lock_guard<std::mutex> lock(mu_);
  PCR_RETURN_IF_ERROR(AppendRecord(kTypePut, key, value));
  index_[key.ToString()] = value.ToString();
  return Status::OK();
}

Status KvStore::Delete(Slice key) {
  std::lock_guard<std::mutex> lock(mu_);
  PCR_RETURN_IF_ERROR(AppendRecord(kTypeDelete, key, Slice()));
  index_.erase(key.ToString());
  return Status::OK();
}

Result<std::string> KvStore::Get(Slice key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key.ToString());
  if (it == index_.end()) {
    return Status::NotFound("key not found: " + key.ToString());
  }
  return it->second;
}

bool KvStore::Contains(Slice key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.count(key.ToString()) > 0;
}

std::vector<std::string> KvStore::ScanPrefix(Slice prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys;
  for (auto it = index_.lower_bound(prefix.ToString());
       it != index_.end() && Slice(it->first).StartsWith(prefix); ++it) {
    keys.push_back(it->first);
  }
  return keys;
}

std::vector<std::pair<std::string, std::string>> KvStore::ScanPrefixEntries(
    Slice prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::string>> entries;
  for (auto it = index_.lower_bound(prefix.ToString());
       it != index_.end() && Slice(it->first).StartsWith(prefix); ++it) {
    entries.emplace_back(it->first, it->second);
  }
  return entries;
}

Status KvStore::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string tmp_path = path_ + ".compact";
  {
    PCR_ASSIGN_OR_RETURN(auto tmp, env_->NewWritableFile(tmp_path));
    std::unique_ptr<WritableFile> old_log = std::move(log_);
    log_ = std::move(tmp);
    log_records_ = 0;
    Status st;
    for (const auto& [key, value] : index_) {
      st = AppendRecord(kTypePut, Slice(key), Slice(value));
      if (!st.ok()) break;
    }
    if (st.ok()) st = log_->Flush();
    if (old_log != nullptr) old_log->Close().ok();
    if (!st.ok()) return st;
  }
  PCR_RETURN_IF_ERROR(env_->RenameFile(tmp_path, path_));
  return Status::OK();
}

Status KvStore::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return log_->Flush();
}

KvStats KvStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  KvStats s;
  s.live_keys = index_.size();
  s.log_records = log_records_;
  s.log_bytes = log_ != nullptr ? log_->BytesWritten() : 0;
  return s;
}

}  // namespace pcr
