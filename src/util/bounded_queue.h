// Bounded multi-producer multi-consumer blocking queue, the backbone of the
// data-loader pipeline (prefetch queue between reader/decoder threads and the
// consumer).
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "util/logging.h"

namespace pcr {

/// Blocking FIFO with a fixed capacity. Push blocks when full; Pop blocks
/// when empty. Close() wakes all waiters: pending items drain, then Pop
/// returns nullopt and Push returns false.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    PCR_CHECK_GT(capacity, 0u);
  }

  /// Blocks until space is available or the queue is closed.
  /// Returns false (dropping the item) if closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false if full or closed.
  bool TryPush(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;  // Closed and drained.
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Pops up to `max_n` items with a single lock acquisition, appending
  /// them (FIFO) to *out. Blocks until at least one item is available or
  /// the queue is closed and drained. Returns the number popped (0 means
  /// closed-and-drained). Cuts lock/notify churn for consumers that can
  /// process small items in batches.
  size_t PopMany(size_t max_n, std::vector<T>* out) {
    if (max_n == 0) return 0;
    size_t popped;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
      popped = std::min(max_n, items_.size());
      for (size_t i = 0; i < popped; ++i) {
        out->push_back(std::move(items_.front()));
        items_.pop_front();
      }
    }
    if (popped > 1) {
      not_full_.notify_all();  // Several slots freed at once.
    } else if (popped == 1) {
      not_full_.notify_one();
    }
    return popped;
  }

  /// Pop with a deadline: blocks up to `timeout_nanos` for an item. Returns
  /// nullopt on timeout *and* on closed-and-drained; use closed() to tell the
  /// two apart when it matters (the I/O schedulers' bounded waits do).
  std::optional<T> PopFor(int64_t timeout_nanos) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, std::chrono::nanoseconds(timeout_nanos),
                        [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;  // Timeout or closed-and-drained.
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Marks the queue closed; all blocked producers/consumers wake up.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace pcr
