// Fixed-width console table printer used by every bench binary to emit
// paper-style rows.
#pragma once

#include <string>
#include <vector>

namespace pcr {

/// Collects rows of string cells and prints them with aligned columns and a
/// header rule. Cheap and dependency-free; benches convert numbers via
/// StrFormat.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Renders the full table to a string (header, rule, rows).
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pcr
