// Result<T>: value-or-Status, the Arrow idiom for fallible value-producing
// functions.
#pragma once

#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace pcr {

/// Holds either a value of type T or a non-OK Status describing why the value
/// could not be produced. Constructing from an OK status is a programming
/// error (checked).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    PCR_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }

  /// Returns the error status, or OK when a value is held.
  const Status& status() const { return status_; }

  /// Returns the held value; must only be called when ok().
  const T& value() const& {
    PCR_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    PCR_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    PCR_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  /// Moves the value out of the Result; must only be called when ok().
  T MoveValue() {
    PCR_CHECK(ok()) << "Result::MoveValue() on error: " << status_.ToString();
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T>), propagates the error, or assigns the
/// value to `lhs`. `lhs` may include a declaration, e.g.
/// PCR_ASSIGN_OR_RETURN(auto file, env->OpenFile(path));
#define PCR_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  PCR_ASSIGN_OR_RETURN_IMPL_(                                     \
      PCR_RESULT_CONCAT_(_pcr_result, __COUNTER__), lhs, rexpr)

#define PCR_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).MoveValue()

#define PCR_RESULT_CONCAT_INNER_(a, b) a##b
#define PCR_RESULT_CONCAT_(a, b) PCR_RESULT_CONCAT_INNER_(a, b)

}  // namespace pcr
