// Shared-memory segment and slot-ring helpers for the serving daemon's
// descriptor-passing data plane. A ShmSegment is an anonymous memory-backed
// file (memfd_create, with a shm_open fallback for older kernels) that one
// process creates and maps read-write, then ships to a peer over SCM_RIGHTS;
// the peer maps the same fd read-only. A SlotRing tracks which fixed-size
// slots of the segment are currently lent out to the peer, stamping each
// tenancy with a generation cookie so stale or forged release frames cannot
// free a slot that has since been reused.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace pcr {

/// An mmap'd anonymous shared-memory segment. Move-only; the destructor
/// unmaps and closes the fd. The creating side maps read-write, a side that
/// adopts a received fd maps read-only by default.
class ShmSegment {
 public:
  ShmSegment() = default;
  ~ShmSegment();

  ShmSegment(ShmSegment&& other) noexcept;
  ShmSegment& operator=(ShmSegment&& other) noexcept;
  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;

  /// Creates a new segment of `bytes` bytes via memfd_create, falling back
  /// to shm_open+unlink when memfd is unavailable. `name_hint` is only a
  /// debugging label (visible in /proc/<pid>/fd). The mapping is read-write.
  static Result<ShmSegment> Create(const std::string& name_hint, size_t bytes);

  /// Adopts an fd received over SCM_RIGHTS and maps it. Verifies the fd is
  /// at least `bytes` long before mapping, so an undersized or truncated
  /// segment is rejected instead of faulting later. Takes ownership of `fd`
  /// on success AND on failure (it is closed either way).
  static Result<ShmSegment> Adopt(int fd, size_t bytes, bool writable = false);

  bool valid() const { return data_ != nullptr; }
  uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  int fd() const { return fd_; }

 private:
  ShmSegment(int fd, uint8_t* data, size_t size)
      : fd_(fd), data_(data), size_(size) {}
  void Reset();

  int fd_ = -1;
  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

/// Placement copy into a shared-memory slot. The destination is written
/// exactly once and never read back by the producer (the consumer is in
/// another process), so on x86-64 the bulk is moved with non-temporal
/// stores: unlike memcpy, the CPU does not read-for-ownership and then
/// write back the destination cache lines, cutting the copy's memory
/// traffic by roughly a third — the difference between the shm plane being
/// copy-bound and bandwidth-headroom when many streams place batches at
/// once. Ends with a store fence, so once this returns the data is visible
/// to a peer notified through any sequentially consistent channel (the
/// descriptor frame write). Falls back to memcpy on other architectures.
void PlacementCopy(void* dst, const void* src, size_t n);

/// Bookkeeping for a ring of fixed-size slots lent to a peer. The owner
/// acquires a free slot (blocking while every slot is held — that is the
/// data plane's backpressure), fills it, and sends a descriptor carrying the
/// slot index plus the generation cookie stamped at acquisition. The peer
/// returns the slot with the same cookie; a release whose cookie does not
/// match the live tenancy is ignored. ReclaimAll() force-frees everything
/// when the peer disconnects while holding slots.
class SlotRing {
 public:
  SlotRing(uint32_t num_slots, uint64_t slot_bytes);

  uint32_t num_slots() const { return num_slots_; }
  uint64_t slot_bytes() const { return slot_bytes_; }

  /// Byte offset of `slot` within the segment.
  uint64_t SlotOffset(uint32_t slot) const {
    return static_cast<uint64_t>(slot) * slot_bytes_;
  }

  /// Blocks until a slot is free, then marks it held and returns
  /// {slot, generation}. Returns nullopt once Close() has been called.
  /// `waited` (optional) is set to true when the call had to block because
  /// every slot was held — the caller counts those as shm_slot_waits.
  std::optional<std::pair<uint32_t, uint64_t>> Acquire(bool* waited = nullptr);

  /// Non-blocking Acquire: nullopt when every slot is held (or closed).
  std::optional<std::pair<uint32_t, uint64_t>> TryAcquire();

  /// Releases `slot` if `generation` matches its live tenancy. Returns false
  /// (and changes nothing) for out-of-range slots, free slots, or stale
  /// cookies — forged or duplicated release frames are harmless.
  bool Release(uint32_t slot, uint64_t generation);

  /// Force-frees every held slot (peer went away without returning them).
  /// Outstanding generations are invalidated, so a straggling release for a
  /// reclaimed slot is ignored.
  void ReclaimAll();

  /// Wakes blocked Acquire() calls and makes all future ones fail.
  void Close();

  uint32_t held_slots() const;

 private:
  std::optional<std::pair<uint32_t, uint64_t>> AcquireLocked();

  const uint32_t num_slots_;
  const uint64_t slot_bytes_;

  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  std::vector<uint64_t> generation_;  // 0 = free; nonzero = live cookie.
  uint64_t next_generation_ = 1;
  uint32_t held_ = 0;
  bool closed_ = false;
};

}  // namespace pcr
