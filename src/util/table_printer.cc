#include "util/table_printer.h"

#include <cstdio>

#include "util/logging.h"

namespace pcr {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  PCR_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      if (c + 1 < row.size()) {
        line.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    line += "\n";
    return line;
  };
  std::string out = render_row(header_);
  size_t rule_len = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule_len += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule_len, '-');
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { fputs(ToString().c_str(), stdout); }

}  // namespace pcr
