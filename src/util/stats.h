// Streaming statistics helpers used by benchmarks and the simulator:
// running mean/variance, reservoir-free percentile tracking over stored
// samples, log2-bucketed histograms (Figure 12 style), and simple OLS linear
// regression (Figure 7 style).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace pcr {

/// Welford running mean/variance. O(1) per observation.
class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
    sum_ += x;
  }

  int64_t count() const { return n_; }
  double mean() const { return mean_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  /// Half-width of the 95% normal-approximation confidence interval.
  double ci95_halfwidth() const {
    return n_ > 1 ? 1.96 * stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores samples and answers percentile/IQR queries (used for the
/// interquartile-range plots in Figures 16–18).
class SampleSet {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void Reserve(size_t n) { samples_.reserve(n); }

  size_t count() const { return samples_.size(); }
  double Sum() const;
  double Mean() const;
  double Stddev() const;
  /// Linear-interpolated percentile; p in [0, 100].
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }
  double Iqr25() const { return Percentile(25.0); }
  double Iqr75() const { return Percentile(75.0); }
  double Min() const { return Percentile(0.0); }
  double Max() const { return Percentile(100.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Power-of-two bucketed histogram of positive values, matching the paper's
/// Figure 12 ("sizes of images in ImageNet") presentation.
class Log2Histogram {
 public:
  void Add(double value);

  int64_t total_count() const { return total_; }
  /// Bucket b covers [2^b, 2^(b+1)).
  const std::vector<int64_t>& buckets() const { return counts_; }
  int min_bucket() const { return min_bucket_; }

  /// Probability mass per bucket, rendered as "bucket_lo_bytes probability"
  /// rows.
  std::vector<std::pair<double, double>> NormalizedRows() const;

 private:
  std::vector<int64_t> counts_;  // Indexed by bucket - min_bucket_.
  int min_bucket_ = 0;
  bool empty_ = true;
  int64_t total_ = 0;
};

/// Ordinary least-squares fit y = slope*x + intercept with r^2 and the
/// p-value of the slope (two-sided t-test).
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
  double p_value = 1.0;
  int64_t n = 0;
};

/// Fits a line to (x, y) pairs. Returns a default fit when n < 3.
LinearFit FitLinear(const std::vector<double>& x, const std::vector<double>& y);

/// Pearson correlation coefficient; 0 when fewer than 2 points.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

}  // namespace pcr
