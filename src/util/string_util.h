// Small string/format helpers shared by benches and examples.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <string>
#include <vector>

namespace pcr {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// "1.5 KiB", "129.0 GiB", etc. (base-1024 units).
std::string HumanBytes(double bytes);

/// "1.2 s", "30 ms", "1250 min" style durations from seconds.
std::string HumanSeconds(double seconds);

/// Joins items with a separator.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits on a single character, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

}  // namespace pcr
