#include "util/string_util.h"

#include <cstdio>

namespace pcr {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int len = vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (len > 0) {
    out.resize(static_cast<size_t>(len));
    vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string HumanBytes(double bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  return StrFormat("%.1f %s", bytes, kUnits[unit]);
}

std::string HumanSeconds(double seconds) {
  if (seconds < 1e-3) return StrFormat("%.1f us", seconds * 1e6);
  if (seconds < 1.0) return StrFormat("%.1f ms", seconds * 1e3);
  if (seconds < 120.0) return StrFormat("%.1f s", seconds);
  if (seconds < 7200.0) return StrFormat("%.1f min", seconds / 60.0);
  return StrFormat("%.1f h", seconds / 3600.0);
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace pcr
