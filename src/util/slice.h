// Slice: non-owning view over a byte range (RocksDB idiom), with helpers for
// binary data that std::string_view lacks.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace pcr {

/// An (offset, length) descriptor of a byte range inside some owning
/// buffer. Unlike a Slice it carries no pointer, so it stays valid when the
/// owning buffer is moved (including small-string moves that relocate the
/// bytes); resolve it against the buffer at the point of use.
struct ByteSpan {
  size_t offset = 0;
  size_t length = 0;
};

/// A non-owning pointer+length view over bytes. The referenced memory must
/// outlive the Slice.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const uint8_t* data, size_t size)
      : data_(reinterpret_cast<const char*>(data)), size_(size) {}
  Slice(const std::string& s)  // NOLINT(runtime/explicit)
      : data_(s.data()), size_(s.size()) {}
  Slice(std::string_view s)  // NOLINT(runtime/explicit)
      : data_(s.data()), size_(s.size()) {}
  Slice(const char* s)  // NOLINT(runtime/explicit)
      : data_(s), size_(strlen(s)) {}
  Slice(const std::vector<uint8_t>& v)  // NOLINT(runtime/explicit)
      : data_(reinterpret_cast<const char*>(v.data())), size_(v.size()) {}

  const char* data() const { return data_; }
  const uint8_t* udata() const {
    return reinterpret_cast<const uint8_t*>(data_);
  }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t n) const {
    assert(n < size_);
    return data_[n];
  }

  /// Drops the first n bytes from this slice.
  void RemovePrefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  /// Returns the sub-slice [offset, offset+len); clamps len to the end.
  Slice SubSlice(size_t offset, size_t len) const {
    assert(offset <= size_);
    if (len > size_ - offset) len = size_ - offset;
    return Slice(data_ + offset, len);
  }

  bool StartsWith(const Slice& prefix) const {
    if (prefix.size_ == 0) return true;  // memcmp requires non-null pointers
    return size_ >= prefix.size_ &&
           memcmp(data_, prefix.data_, prefix.size_) == 0;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view ToStringView() const {
    return std::string_view(data_, size_);
  }
  std::vector<uint8_t> ToBytes() const {
    return std::vector<uint8_t>(udata(), udata() + size_);
  }

  /// Three-way lexicographic comparison: <0, 0, >0.
  int Compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = min_len == 0 ? 0 : memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) r = -1;
      else if (size_ > other.size_) r = 1;
    }
    return r;
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() && memcmp(a.data(), b.data(), a.size()) == 0;
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }
inline bool operator<(const Slice& a, const Slice& b) {
  return a.Compare(b) < 0;
}

}  // namespace pcr
