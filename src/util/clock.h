// Clock abstraction: real wall-clock and a manually-advanced virtual clock.
//
// All simulation components (SimEnv storage devices, the compute-unit model,
// the training-pipeline simulator) share one VirtualClock, which lets
// wall-clock-scale experiments (90-epoch ImageNet runs) execute in
// milliseconds while preserving queueing behaviour.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>

namespace pcr {

/// Time source measured in nanoseconds from an arbitrary epoch.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in nanoseconds.
  virtual int64_t NowNanos() const = 0;

  /// Blocks (really or virtually) for the given duration.
  virtual void SleepNanos(int64_t nanos) = 0;

  double NowSeconds() const { return static_cast<double>(NowNanos()) * 1e-9; }
};

/// Clock backed by std::chrono::steady_clock.
class RealClock : public Clock {
 public:
  int64_t NowNanos() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  void SleepNanos(int64_t nanos) override;

  /// Process-wide singleton.
  static RealClock* Get();
};

/// A clock that only moves when told to. Single-threaded by design: the
/// simulator owns the clock and advances it as simulated events complete.
class VirtualClock : public Clock {
 public:
  explicit VirtualClock(int64_t start_nanos = 0) : now_(start_nanos) {}

  int64_t NowNanos() const override { return now_; }
  void SleepNanos(int64_t nanos) override { now_ += std::max<int64_t>(0, nanos); }

  /// Moves time forward by `nanos` (same as SleepNanos; reads better at call
  /// sites that are not "sleeping").
  void AdvanceNanos(int64_t nanos) { SleepNanos(nanos); }
  void AdvanceSeconds(double seconds) {
    SleepNanos(static_cast<int64_t>(seconds * 1e9));
  }

  /// Jumps to an absolute time, which must not be in the past.
  void AdvanceTo(int64_t nanos) { now_ = std::max(now_, nanos); }

 private:
  int64_t now_;
};

constexpr int64_t kNanosPerSecond = 1'000'000'000;

inline int64_t SecondsToNanos(double seconds) {
  return static_cast<int64_t>(seconds * 1e9);
}
inline double NanosToSeconds(int64_t nanos) {
  return static_cast<double>(nanos) * 1e-9;
}

}  // namespace pcr
