// Minimal streaming logger and CHECK macros (glog-flavored).
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace pcr {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and emits it (with level prefix) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 protected:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

/// A LogMessage that aborts the process after emitting.
class FatalLogMessage : public LogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }
};

}  // namespace internal

#define PCR_LOG(level)                                              \
  ::pcr::internal::LogMessage(::pcr::LogLevel::k##level, __FILE__, \
                              __LINE__)

/// Aborts with a message when `cond` is false. Active in all build types:
/// these guard internal invariants whose violation means memory corruption or
/// a library bug, never ordinary user error (which gets a Status).
#define PCR_CHECK(cond)                                   \
  if (!(cond))                                            \
  ::pcr::internal::FatalLogMessage(__FILE__, __LINE__)    \
      << "Check failed: " #cond " "

#define PCR_CHECK_EQ(a, b) PCR_CHECK((a) == (b))
#define PCR_CHECK_NE(a, b) PCR_CHECK((a) != (b))
#define PCR_CHECK_LT(a, b) PCR_CHECK((a) < (b))
#define PCR_CHECK_LE(a, b) PCR_CHECK((a) <= (b))
#define PCR_CHECK_GT(a, b) PCR_CHECK((a) > (b))
#define PCR_CHECK_GE(a, b) PCR_CHECK((a) >= (b))

/// Debug-only check.
#ifdef NDEBUG
#define PCR_DCHECK(cond) \
  if (false) ::pcr::internal::FatalLogMessage(__FILE__, __LINE__)
#else
#define PCR_DCHECK(cond) PCR_CHECK(cond)
#endif

}  // namespace pcr
