#include "util/status.h"

namespace pcr {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnknown:
      return "Unknown";
  }
  return "InvalidCode";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message_;
  return Status(code_, std::move(msg));
}

}  // namespace pcr
