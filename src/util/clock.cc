#include "util/clock.h"

#include <thread>

namespace pcr {

void RealClock::SleepNanos(int64_t nanos) {
  if (nanos > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
  }
}

RealClock* RealClock::Get() {
  static RealClock clock;
  return &clock;
}

}  // namespace pcr
