#include "util/thread_pool.h"

#include "util/logging.h"

namespace pcr {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PCR_CHECK(!shutdown_) << "Submit after Shutdown";
    tasks_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [&] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock, [&] { return !tasks_.empty() || shutdown_; });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace pcr
