// Deterministic pseudo-random number generation (xoshiro256**). Used instead
// of <random> engines so that simulations are reproducible across platforms
// and standard-library versions.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace pcr {

/// xoshiro256** generator (Blackman & Vigna). Fast, high-quality, and with a
/// fixed cross-platform output sequence for a given seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator via splitmix64 expansion of `seed`.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) {
      // splitmix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Box–Muller.
  double NextGaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = NextDouble();
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586 * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return r * std::cos(theta);
  }

  /// Lognormal sample with the given log-space mean and stddev.
  double NextLogNormal(double mu, double sigma) {
    return std::exp(mu + sigma * NextGaussian());
  }

  /// Bernoulli draw with probability p of true.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Exponential sample with the given rate (lambda).
  double NextExponential(double rate) {
    double u = 0.0;
    while (u <= 1e-300) u = NextDouble();
    return -std::log(u) / rate;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples an index from an (unnormalized) non-negative weight vector.
  size_t SampleDiscrete(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    double r = NextDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r < 0.0) return i;
    }
    return weights.empty() ? 0 : weights.size() - 1;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace pcr
