// CRC32C (Castagnoli) checksum, used to detect corruption in KV-store log
// records and PCR file headers.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/slice.h"

namespace pcr::crc32c {

/// Extends `init_crc` with `data`; pass 0 for a fresh checksum.
uint32_t Extend(uint32_t init_crc, const void* data, size_t n);

inline uint32_t Value(const void* data, size_t n) { return Extend(0, data, n); }
inline uint32_t Value(Slice s) { return Value(s.data(), s.size()); }

/// Masked CRC (RocksDB-style rotation + constant) so that CRCs stored
/// alongside the data they cover do not produce degenerate self-checksums.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t Unmask(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace pcr::crc32c
