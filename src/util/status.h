// Status: error-handling primitive used throughout the PCR library.
//
// The library does not use exceptions (RocksDB/Arrow idiom). Every fallible
// operation returns a Status, or a Result<T> (see result.h) when it also
// produces a value.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace pcr {

/// Canonical error codes, modeled after the Arrow/absl status code sets.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kCorruption = 3,
  kIOError = 4,
  kNotSupported = 5,
  kOutOfRange = 6,
  kAlreadyExists = 7,
  kResourceExhausted = 8,
  kFailedPrecondition = 9,
  kAborted = 10,
  kUnknown = 11,
};

/// Returns a stable human-readable name for a status code, e.g. "Corruption".
std::string_view StatusCodeToString(StatusCode code);

/// A Status holds a code plus an optional message. The OK status carries no
/// allocation and is cheap to copy/move/test.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// \name Named constructors, one per error code.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknown, std::move(msg));
  }
  /// @}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `context` prepended to the message.
  /// Useful when propagating errors up a call chain.
  Status WithContext(std::string_view context) const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller. Usable in functions returning
/// Status or Result<T>.
#define PCR_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::pcr::Status _pcr_st = (expr);              \
    if (!_pcr_st.ok()) return _pcr_st;           \
  } while (0)

}  // namespace pcr
