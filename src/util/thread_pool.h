// Fixed-size worker pool used by the PCR encoder (parallel JPEG transcodes)
// and the data loader (parallel decodes).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pcr {

/// A classic fixed-size thread pool. Tasks are void() callables. The
/// destructor drains remaining tasks and joins all workers.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after Shutdown().
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  /// Stops accepting tasks, drains the queue, joins workers. Idempotent.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> threads_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace pcr
