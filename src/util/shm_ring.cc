#include "util/shm_ring.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <utility>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace pcr {

namespace {

int MemfdCreate(const std::string& name) {
#ifdef __NR_memfd_create
  return static_cast<int>(
      syscall(__NR_memfd_create, name.c_str(), MFD_CLOEXEC));
#else
  errno = ENOSYS;
  return -1;
#endif
}

// shm_open needs a unique /dev/shm name; derive one from the pid and a
// counter, and unlink immediately so only the fd keeps it alive.
int ShmOpenAnonymous(const std::string& name_hint) {
  static std::atomic<uint64_t> counter{0};
  std::string path = "/pcr-" + name_hint + "-" + std::to_string(getpid()) +
                     "-" + std::to_string(counter.fetch_add(1));
  if (path.size() > 250) path.resize(250);
  int fd = shm_open(path.c_str(), O_RDWR | O_CREAT | O_EXCL | O_CLOEXEC, 0600);
  if (fd >= 0) shm_unlink(path.c_str());
  return fd;
}

}  // namespace

void PlacementCopy(void* dst, const void* src, size_t n) {
#if defined(__SSE2__)
  auto* d = static_cast<unsigned char*>(dst);
  auto* s = static_cast<const unsigned char*>(src);
  // Head: byte-copy until the destination is 16-byte aligned (movnti and
  // friends fault on unaligned addresses). Sources stay unaligned-loaded.
  while (n > 0 && (reinterpret_cast<uintptr_t>(d) & 0xf) != 0) {
    *d++ = *s++;
    --n;
  }
  while (n >= 64) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(s));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + 16));
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + 32));
    const __m128i e =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + 48));
    _mm_stream_si128(reinterpret_cast<__m128i*>(d), a);
    _mm_stream_si128(reinterpret_cast<__m128i*>(d + 16), b);
    _mm_stream_si128(reinterpret_cast<__m128i*>(d + 32), c);
    _mm_stream_si128(reinterpret_cast<__m128i*>(d + 48), e);
    d += 64;
    s += 64;
    n -= 64;
  }
  if (n > 0) std::memcpy(d, s, n);
  // Non-temporal stores are weakly ordered; drain them before the caller
  // publishes the slot through the descriptor frame.
  _mm_sfence();
#else
  std::memcpy(dst, src, n);
#endif
}

ShmSegment::~ShmSegment() { Reset(); }

ShmSegment::ShmSegment(ShmSegment&& other) noexcept
    : fd_(other.fd_), data_(other.data_), size_(other.size_) {
  other.fd_ = -1;
  other.data_ = nullptr;
  other.size_ = 0;
}

ShmSegment& ShmSegment::operator=(ShmSegment&& other) noexcept {
  if (this != &other) {
    Reset();
    fd_ = other.fd_;
    data_ = other.data_;
    size_ = other.size_;
    other.fd_ = -1;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void ShmSegment::Reset() {
  if (data_ != nullptr) ::munmap(data_, size_);
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  data_ = nullptr;
  size_ = 0;
}

Result<ShmSegment> ShmSegment::Create(const std::string& name_hint,
                                      size_t bytes) {
  if (bytes == 0) return Status::InvalidArgument("shm segment size is zero");
  int fd = MemfdCreate(name_hint);
  if (fd < 0) fd = ShmOpenAnonymous(name_hint);
  if (fd < 0) {
    return Status::IOError(std::string("shm segment creation failed: ") +
                            strerror(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    Status st = Status::IOError(std::string("shm ftruncate failed: ") +
                                 strerror(errno));
    ::close(fd);
    return st;
  }
  void* map =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (map == MAP_FAILED) {
    Status st =
        Status::IOError(std::string("shm mmap failed: ") + strerror(errno));
    ::close(fd);
    return st;
  }
  return ShmSegment(fd, static_cast<uint8_t*>(map), bytes);
}

Result<ShmSegment> ShmSegment::Adopt(int fd, size_t bytes, bool writable) {
  if (fd < 0) return Status::InvalidArgument("shm fd is invalid");
  if (bytes == 0) {
    ::close(fd);
    return Status::InvalidArgument("shm segment size is zero");
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    Status err =
        Status::IOError(std::string("shm fstat failed: ") + strerror(errno));
    ::close(fd);
    return err;
  }
  if (st.st_size < static_cast<off_t>(bytes)) {
    ::close(fd);
    return Status::InvalidArgument(
        "shm segment smaller than negotiated size (" +
        std::to_string(st.st_size) + " < " + std::to_string(bytes) + ")");
  }
  int prot = PROT_READ | (writable ? PROT_WRITE : 0);
  void* map = ::mmap(nullptr, bytes, prot, MAP_SHARED, fd, 0);
  if (map == MAP_FAILED) {
    Status err =
        Status::IOError(std::string("shm mmap failed: ") + strerror(errno));
    ::close(fd);
    return err;
  }
  return ShmSegment(fd, static_cast<uint8_t*>(map), bytes);
}

SlotRing::SlotRing(uint32_t num_slots, uint64_t slot_bytes)
    : num_slots_(num_slots),
      slot_bytes_(slot_bytes),
      generation_(num_slots, 0) {}

std::optional<std::pair<uint32_t, uint64_t>> SlotRing::AcquireLocked() {
  for (uint32_t slot = 0; slot < num_slots_; ++slot) {
    if (generation_[slot] == 0) {
      uint64_t gen = next_generation_++;
      generation_[slot] = gen;
      ++held_;
      return std::make_pair(slot, gen);
    }
  }
  return std::nullopt;  // Unreachable when held_ < num_slots_.
}

std::optional<std::pair<uint32_t, uint64_t>> SlotRing::Acquire(bool* waited) {
  std::unique_lock<std::mutex> lock(mu_);
  if (waited != nullptr) *waited = (!closed_ && held_ == num_slots_);
  slot_free_.wait(lock, [&] { return closed_ || held_ < num_slots_; });
  if (closed_) return std::nullopt;
  return AcquireLocked();
}

std::optional<std::pair<uint32_t, uint64_t>> SlotRing::TryAcquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_ || held_ == num_slots_) return std::nullopt;
  return AcquireLocked();
}

bool SlotRing::Release(uint32_t slot, uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slot >= num_slots_ || generation == 0) return false;
  if (generation_[slot] != generation) return false;
  generation_[slot] = 0;
  --held_;
  slot_free_.notify_one();
  return true;
}

void SlotRing::ReclaimAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& gen : generation_) gen = 0;
  held_ = 0;
  slot_free_.notify_all();
}

void SlotRing::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  slot_free_.notify_all();
}

uint32_t SlotRing::held_slots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return held_;
}

}  // namespace pcr
