#include "util/stats.h"

#include "util/logging.h"

namespace pcr {

double SampleSet::Sum() const {
  double s = 0.0;
  for (double x : samples_) s += x;
  return s;
}

double SampleSet::Mean() const {
  return samples_.empty() ? 0.0 : Sum() / static_cast<double>(samples_.size());
}

double SampleSet::Stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = Mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

void SampleSet::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void Log2Histogram::Add(double value) {
  PCR_CHECK_GT(value, 0.0);
  const int bucket = static_cast<int>(std::floor(std::log2(value)));
  if (empty_) {
    min_bucket_ = bucket;
    counts_.assign(1, 0);
    empty_ = false;
  }
  if (bucket < min_bucket_) {
    counts_.insert(counts_.begin(), min_bucket_ - bucket, 0);
    min_bucket_ = bucket;
  } else if (bucket >= min_bucket_ + static_cast<int>(counts_.size())) {
    counts_.resize(bucket - min_bucket_ + 1, 0);
  }
  ++counts_[bucket - min_bucket_];
  ++total_;
}

std::vector<std::pair<double, double>> Log2Histogram::NormalizedRows() const {
  std::vector<std::pair<double, double>> rows;
  if (total_ == 0) return rows;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double lo = std::pow(2.0, min_bucket_ + static_cast<int>(i));
    rows.emplace_back(lo, static_cast<double>(counts_[i]) /
                              static_cast<double>(total_));
  }
  return rows;
}

namespace {

// Regularized incomplete beta function via continued fraction (Lentz), used
// for the Student-t CDF in the regression p-value.
double BetaContinuedFraction(double a, double b, double x) {
  const int max_iter = 300;
  const double eps = 3e-12;
  const double fpmin = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < fpmin) d = fpmin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= max_iter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < fpmin) d = fpmin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < fpmin) c = fpmin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < fpmin) d = fpmin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < fpmin) c = fpmin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < eps) break;
  }
  return h;
}

double IncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_beta = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b);
  const double front = std::exp(ln_beta + a * std::log(x) +
                                b * std::log(1.0 - x));
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

// Two-sided p-value for a t statistic with df degrees of freedom.
double StudentTTwoSidedP(double t, double df) {
  const double x = df / (df + t * t);
  return IncompleteBeta(df / 2.0, 0.5, x);
}

}  // namespace

LinearFit FitLinear(const std::vector<double>& x,
                    const std::vector<double>& y) {
  LinearFit fit;
  PCR_CHECK_EQ(x.size(), y.size());
  const int64_t n = static_cast<int64_t>(x.size());
  fit.n = n;
  if (n < 3) return fit;

  double sx = 0, sy = 0;
  for (int64_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (int64_t i = 0; i < n; ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;

  double ss_res = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double pred = fit.slope * x[i] + fit.intercept;
    ss_res += (y[i] - pred) * (y[i] - pred);
  }
  fit.r2 = syy > 0.0 ? 1.0 - ss_res / syy : 1.0;

  const double df = static_cast<double>(n - 2);
  const double se2 = ss_res / df / sxx;
  if (se2 <= 0.0) {
    fit.p_value = 0.0;
  } else {
    const double t = fit.slope / std::sqrt(se2);
    fit.p_value = StudentTTwoSidedP(t, df);
  }
  return fit;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  PCR_CHECK_EQ(x.size(), y.size());
  const size_t n = x.size();
  if (n < 2) return 0.0;
  double sx = 0, sy = 0;
  for (size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxx = 0, syy = 0, sxy = 0;
  for (size_t i = 0; i < n; ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
    sxy += (x[i] - mx) * (y[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace pcr
