// PcrDaemon: the long-running serving node — one process owning the shared
// storage/decode resources (Env + FdCache via the process Env, one big
// DecodeCache and PrefixCache), feeding many trainer clients over a
// unix-domain socket speaking the serve/protocol.h frame protocol.
//
// Resource model per client stream:
//
//   - Each OpenStream admits (or rejects — admission control) one stream
//     backed by its OWN LoaderPipeline: private epoch/shuffle/scan-group
//     state, but the shared caches underneath. Two clients streaming the
//     same dataset therefore share decoded entries: the daemon derives the
//     cache namespace server-side from (canonical path, manifest
//     fingerprint), so the same dataset + writer generation maps to the
//     same id regardless of which client opened it first, and a rewritten
//     dataset gets a fresh id instead of colliding with stale entries.
//   - Admission control: at most `max_streams` live streams, at most
//     `max_inflight_per_stream` queued NextBatch requests per stream
//     (excess requests get ResourceExhausted instead of unbounded daemon
//     memory), and each open dataset is capped to a byte-budget share of
//     the decode cache (DecodeCache::SetDatasetByteCap) so one tenant's
//     working set cannot evict everyone else's.
//   - Fairness: batch deliveries pass through a deficit-round-robin
//     scheduler (DrrScheduler). `serve_tokens` deliveries run concurrently;
//     when streams contend for a token, the one with the most unspent
//     deficit goes first and is charged the actual reply bytes it served —
//     so a greedy client pipelining large batches cannot starve a modest
//     one.
//
// Threading: one accept thread, one reader thread per connection
// (demultiplexing Hello/OpenStream/NextBatch/Stats/Close), one serving
// thread per stream (NextBatch queue -> DRR -> pipeline -> reply). Stop()
// is bounded even with clients blocked in NextBatch: it shuts the sockets
// down and stops every pipeline, which unblocks the serving threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/pcr_dataset.h"
#include "loader/decode_cache.h"
#include "loader/pipeline.h"
#include "loader/prefix_cache.h"
#include "loader/stage_stats.h"
#include "serve/protocol.h"
#include "storage/env.h"
#include "util/result.h"

namespace pcr::serve {

struct DaemonOptions {
  /// Unix-domain socket path the daemon listens on (unlinked on Stop()).
  /// Must fit sockaddr_un (~100 bytes).
  std::string socket_path;
  std::string server_name = "pcrd";

  // Admission control.
  int max_streams = 16;
  int max_inflight_per_stream = 8;
  /// Concurrent batch deliveries across all streams; the DRR scheduler
  /// arbitrates which waiting stream gets the next token.
  int serve_tokens = 4;
  /// Deficit added per DRR round (bytes); a stream's deliveries are charged
  /// against it at actual reply size.
  uint64_t drr_quantum_bytes = 4ull << 20;
  /// Each open dataset's byte-budget share of the decode cache, as a
  /// fraction of capacity (0 disables per-dataset caps).
  double dataset_cache_share = 0.5;

  // Shared caches (one of each per daemon).
  uint64_t decode_cache_bytes = 256ull << 20;
  uint64_t prefix_cache_bytes = 64ull << 20;

  // Per-stream pipeline shape (LoaderPipelineOptions subset).
  int io_threads = 1;
  int io_inflight = 4;
  int decode_threads = 2;
  IoBackend io_backend = IoBackend::kAuto;

  // Shared-memory data plane (decoded streams only; negotiated per stream).
  /// Offer the shm plane to capable clients that ask for it.
  bool shm_plane = true;
  /// Slots in each stream's ring; 0 derives the granted in-flight cap + 2,
  /// so a well-behaved client never stalls on slot credits.
  int shm_slots_per_stream = 0;
  /// Per-slot capacity. A batch that does not fit falls back to a socket
  /// BatchReply for just that batch. Clamped to >= 4 KiB.
  uint64_t shm_slot_bytes = 4ull << 20;
  /// Deterministic fault injection for tests: pretend the SCM_RIGHTS pass
  /// failed (the daemon withdraws the plane and the stream stays on the
  /// socket), or create the segment at half the advertised size (the client
  /// must reject it at fstat validation and fall back cleanly).
  bool shm_fail_fd_pass_for_test = false;
  bool shm_undersize_segment_for_test = false;
};

class PcrDaemon {
 public:
  /// Binds the socket and starts the accept loop. The returned daemon is
  /// serving; destroy it (or Stop()) to shut down.
  static Result<std::unique_ptr<PcrDaemon>> Start(Env* env,
                                                  DaemonOptions options);

  ~PcrDaemon();
  PcrDaemon(const PcrDaemon&) = delete;
  PcrDaemon& operator=(const PcrDaemon&) = delete;

  /// Stops accepting, disconnects every client (in-flight NextBatch
  /// requests unblock with Aborted), joins all threads, and unlinks the
  /// socket. Bounded and idempotent.
  void Stop();

  const std::string& socket_path() const { return options_.socket_path; }

  /// Live stream count (admission gauge).
  int active_streams() const;

  /// The shared decoded-batch cache (test/diagnostic access).
  const std::shared_ptr<DecodeCache>& decode_cache() const {
    return decode_cache_;
  }

  /// The server-side cache namespace for a dataset directory: a hash of the
  /// canonical path and the metadata manifest's fingerprint (size + CRC).
  /// Same dataset + same writer generation => same id (clients share cache
  /// entries); a rewritten dataset changes the fingerprint, so stale keys
  /// from the old generation can never serve the new one.
  static Result<uint64_t> DeriveCacheDatasetId(Env* env,
                                               const std::string& dataset_dir);

 private:
  struct Connection;
  struct Stream;
  struct DatasetEntry;

  /// Deficit-round-robin arbiter over `serve_tokens` delivery slots.
  class DrrScheduler {
   public:
    DrrScheduler(int tokens, uint64_t quantum)
        : tokens_(tokens), quantum_(quantum) {}
    void Register(uint64_t stream_id);
    void Unregister(uint64_t stream_id);
    /// Blocks until `stream_id` wins a delivery token (false on shutdown).
    bool Acquire(uint64_t stream_id);
    /// Returns the token, charging the stream `bytes` of deficit.
    void Release(uint64_t stream_id, uint64_t bytes);
    void Shutdown();

   private:
    struct Entry {
      int64_t deficit = 0;
      bool waiting = false;
    };
    /// Picks the waiting stream with the most deficit, topping every
    /// waiting stream up by one quantum ("a round") whenever the best is
    /// overdrawn. Returns 0 if nobody waits. Caller holds mu_.
    uint64_t PickNextLocked();

    std::mutex mu_;
    std::condition_variable cv_;
    int tokens_;
    uint64_t quantum_;
    bool shutdown_ = false;
    std::map<uint64_t, Entry> entries_;
  };

  PcrDaemon(Env* env, DaemonOptions options);

  Status Listen();
  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  void HandleFrame(const std::shared_ptr<Connection>& conn,
                   const Frame& frame);
  void HandleHello(const std::shared_ptr<Connection>& conn, Slice payload);
  void HandleOpenStream(const std::shared_ptr<Connection>& conn,
                        Slice payload);
  void HandleNextBatch(const std::shared_ptr<Connection>& conn,
                       Slice payload);
  void HandleShmAck(const std::shared_ptr<Connection>& conn, Slice payload);
  void HandleReleaseSlot(const std::shared_ptr<Connection>& conn,
                         Slice payload);
  void HandleStats(const std::shared_ptr<Connection>& conn, Slice payload);
  void HandleCloseStream(const std::shared_ptr<Connection>& conn,
                         Slice payload);
  void ServeLoop(const std::shared_ptr<Stream>& stream);

  /// Serializes + writes one frame under the connection's write lock.
  Status WriteFrame(Connection& conn, MessageType type, Slice payload);
  /// Like WriteFrame, but attaches `fd` to the frame's first byte as
  /// SCM_RIGHTS ancillary data (the shm segment pass at OpenStream).
  Status WriteFrameWithFd(Connection& conn, MessageType type, Slice payload,
                          int fd);
  void SendError(const std::shared_ptr<Connection>& conn,
                 const Status& status, uint64_t stream_id);

  /// Opens (or refs) the dataset registry entry for `dir`, deriving the
  /// shared cache id and installing its byte share.
  Result<std::shared_ptr<DatasetEntry>> AcquireDataset(
      const std::string& dir);
  void ReleaseDataset(const std::shared_ptr<DatasetEntry>& entry);

  /// Tears one stream down: stops its pipeline, joins its serving thread,
  /// releases the DRR registration, admission slot, and dataset ref.
  void TeardownStream(uint64_t stream_id);
  /// Disconnect path: tears down every stream the connection owns.
  void TeardownConnection(const std::shared_ptr<Connection>& conn);

  StatsReply BuildStats(uint64_t stream_id);

  Env* env_;
  DaemonOptions options_;
  std::shared_ptr<DecodeCache> decode_cache_;
  std::shared_ptr<PrefixCache> prefix_cache_;
  DrrScheduler scheduler_;

  int listen_fd_ = -1;
  /// True once Listen() bound the socket path; gates the unlink on Stop()
  /// so a daemon that lost the bind race cannot remove the winner's socket.
  bool bound_ = false;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;

  mutable std::mutex streams_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Stream>> streams_;
  /// Reserved admission slots, guarded by streams_mu_. Streams count from
  /// the moment HandleOpenStream reserves an id (before the fully built
  /// stream is published in streams_) until TeardownStream erases it, so
  /// concurrent opens cannot over-admit during initialization.
  int admitted_streams_ = 0;
  uint64_t next_stream_id_ = 1;

  std::mutex datasets_mu_;
  std::unordered_map<std::string, std::shared_ptr<DatasetEntry>> datasets_;
};

}  // namespace pcr::serve
