// Wire protocol of the PCR serving daemon: length-delimited frames over a
// unix-domain stream socket, each carrying one wire-encoded message
// (wire/wire.h — the same protobuf-compatible substrate the PCR metadata
// uses, so the messages round-trip with real protobuf definitions).
//
// Frame layout:
//
//   [4-byte LE payload length][1-byte message type][wire-encoded payload]
//
// The length counts the type byte plus the payload. A reader enforces
// kMaxFrameBytes BEFORE allocating anything: an oversized or absurd length
// prefix (a corrupt peer, a port scanner poking the socket) is rejected from
// the 4 header bytes alone. Truncated frames are distinguishable from
// malformed ones — FrameParser reports kNeedMore for any clean prefix of a
// valid frame, so stream reassembly never mistakes a short read for
// corruption (and the test suite sweeps every byte cut to prove it).
//
// Conversation:
//   client                          daemon
//   Hello                ->
//                        <-         HelloReply
//   OpenStream           ->
//                        <-         StreamOpened | ErrorReply
//   NextBatch            ->         (up to the stream's in-flight cap)
//                        <-         BatchReply (end_of_stream once the
//                                   pipeline's epochs are exhausted)
//   Stats                ->
//                        <-         StatsReply
//   CloseStream          ->
//                        <-         StreamClosed
//
// BatchReply frames for one stream arrive in request order; frames of
// different streams interleave arbitrarily on the shared connection.
//
// Shared-memory data plane (optional, per stream): when Hello advertised
// shm_capable and OpenStream asked for shm_plane on a decoded stream, the
// daemon follows StreamOpened (which carries the slot-ring geometry) with a
// ShmSegment frame whose sendmsg attaches the segment's memfd as SCM_RIGHTS
// ancillary data. The client maps the segment once and answers ShmAck; only
// an accepted ack switches the stream to descriptors — until then (and
// forever after a rejected ack, a failed fd pass, or an undersized segment)
// batches travel as ordinary BatchReply frames on the socket plane:
//
//   OpenStream(shm_plane)->
//                        <-         StreamOpened (slots, slot_bytes)
//                        <-         ShmSegment (+memfd via SCM_RIGHTS)
//   ShmAck(accepted)     ->
//   NextBatch            ->
//                        <-         BatchDescriptor (slot, generation,
//                                   per-image offsets into the slot)
//   ReleaseSlot          ->         (returns the slot for reuse; holding
//                                   every slot backpressures the daemon)
//
// A batch too large for a slot falls back to a BatchReply for just that
// batch; end-of-stream is always a BatchReply. Descriptors carry a
// generation cookie stamped at slot acquisition, so a stale or forged
// ReleaseSlot cannot free a slot that has since been handed out again.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace pcr::serve {

/// Protocol revision; Hello negotiates it (the daemon rejects mismatches).
inline constexpr uint32_t kProtocolVersion = 1;

/// Hard ceiling a FrameParser/reader enforces before allocating. Large
/// enough for a decoded record batch of full-resolution images, small
/// enough that a hostile length prefix cannot balloon daemon memory.
inline constexpr uint64_t kMaxFrameBytes = 256ull << 20;

enum class MessageType : uint8_t {
  kHello = 1,
  kHelloReply = 2,
  kOpenStream = 3,
  kStreamOpened = 4,
  kNextBatch = 5,
  kBatchReply = 6,
  kStats = 7,
  kStatsReply = 8,
  kCloseStream = 9,
  kStreamClosed = 10,
  kError = 11,
  // Shared-memory data plane (negotiated per stream; see ShmSegmentMsg).
  kShmSegment = 12,       // Daemon -> client; carries the memfd via SCM_RIGHTS.
  kShmAck = 13,           // Client -> daemon; mapped OK or fall back.
  kBatchDescriptor = 14,  // Daemon -> client; batch lives in a slot.
  kReleaseSlot = 15,      // Client -> daemon; slot credit.
};

/// One decoded frame: the type byte plus the owned payload bytes.
struct Frame {
  MessageType type = MessageType::kError;
  std::string payload;
};

/// Incremental frame reassembly over an arbitrary byte stream. Feed it
/// whatever the socket produced; it consumes at most one frame per Next()
/// call and never buffers more than kMaxFrameBytes.
class FrameParser {
 public:
  enum class Outcome {
    kFrame,     // *frame holds a complete message; bytes were consumed.
    kNeedMore,  // The buffer holds a clean prefix; feed more bytes.
    kError,     // The stream is unrecoverable (oversized/garbage header).
  };

  explicit FrameParser(uint64_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw socket bytes to the reassembly buffer.
  void Feed(Slice bytes) { buffer_.append(bytes.data(), bytes.size()); }

  /// Extracts the next complete frame if one is buffered. On kError,
  /// status() says why; the parser stays in the error state.
  Outcome Next(Frame* frame);

  const Status& status() const { return status_; }
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  uint64_t max_frame_bytes_;
  std::string buffer_;
  Status status_;
};

/// Serializes one frame (header + type + payload) ready for write(). The
/// caller must have validated the payload against CheckFramePayloadSize:
/// the length prefix is 32-bit, so an unchecked oversized payload would
/// encode a truncated/wrapped length and the peer would see Corruption.
std::string EncodeFrame(MessageType type, Slice payload);

/// Guards EncodeFrame's length prefix: rejects any payload whose framed
/// size (payload + 1 type byte) exceeds `max_frame_bytes` — the same
/// ceiling FrameParser enforces on the receive side, so a frame that
/// passes here is guaranteed parseable by the peer.
Status CheckFramePayloadSize(uint64_t payload_bytes,
                             uint64_t max_frame_bytes = kMaxFrameBytes);

// --- Messages -------------------------------------------------------------
// Each message is a plain struct with Encode() -> wire bytes and a static
// Decode(payload) that tolerates unknown fields (forward compatibility) but
// rejects malformed wire data.

struct HelloRequest {
  uint32_t protocol_version = kProtocolVersion;
  std::string client_name;
  /// Capability bit: the client can receive SCM_RIGHTS fds and map shm
  /// segments. Defaults to false so a peer that predates the field (and
  /// never encodes it) reads back as incapable.
  bool shm_capable = false;

  std::string Encode() const;
  static Result<HelloRequest> Decode(Slice payload);
};

struct HelloReply {
  uint32_t protocol_version = kProtocolVersion;
  std::string server_name;
  uint32_t max_streams = 0;
  uint32_t max_inflight_per_stream = 0;
  /// The daemon is willing to negotiate the shm data plane (per stream).
  bool shm_supported = false;

  std::string Encode() const;
  static Result<HelloReply> Decode(Slice payload);
};

struct OpenStreamRequest {
  /// Dataset directory on the daemon's filesystem (PCR format).
  std::string dataset_dir;
  /// Fixed scan group for the stream; 0 = full quality.
  uint32_t scan_group = 0;
  /// Epochs to stream; 0 is rejected (an unbounded stream would pin an
  /// admission slot forever — clients re-open instead).
  uint32_t max_epochs = 1;
  bool shuffle = true;
  uint64_t seed = 42;
  /// Serve decoded pixels (true) or assembled JPEG streams (false).
  bool decode = true;
  /// NextBatch requests the client may keep outstanding; clamped to the
  /// daemon's per-client cap.
  uint32_t max_inflight = 1;
  /// Ask for the shared-memory data plane (decoded streams only; the daemon
  /// grants it only when the connection's Hello said shm_capable).
  bool shm_plane = false;

  std::string Encode() const;
  static Result<OpenStreamRequest> Decode(Slice payload);
};

struct StreamOpenedReply {
  uint64_t stream_id = 0;
  uint32_t num_records = 0;
  uint32_t num_images = 0;
  uint32_t num_scan_groups = 0;
  uint32_t scan_group = 0;     // Clamped group the stream serves.
  uint32_t max_inflight = 0;   // Granted in-flight cap.
  /// Server-derived shared-cache namespace (same dataset + generation =>
  /// same id across clients) — informational for the client.
  uint64_t cache_dataset_id = 0;
  /// Shm data plane granted for this stream when shm_slots > 0: a ShmSegment
  /// frame with the memfd follows this reply. 0 = socket plane.
  uint32_t shm_slots = 0;
  uint64_t shm_slot_bytes = 0;

  std::string Encode() const;
  static Result<StreamOpenedReply> Decode(Slice payload);
};

struct NextBatchRequest {
  uint64_t stream_id = 0;

  std::string Encode() const;
  static Result<NextBatchRequest> Decode(Slice payload);
};

/// One decoded image of a served batch.
struct WireImage {
  uint32_t width = 0;
  uint32_t height = 0;
  uint32_t channels = 0;
  std::string pixels;  // Interleaved 8-bit, width*height*channels bytes.
};

struct BatchReply {
  uint64_t stream_id = 0;
  /// Terminal marker: the stream delivered its configured epochs. No batch
  /// fields are set; subsequent NextBatch requests return this again.
  bool end_of_stream = false;
  int32_t record_index = -1;
  uint32_t scan_group = 0;
  std::vector<int64_t> labels;
  std::vector<WireImage> images;  // Decoded mode.
  std::vector<std::string> jpegs; // Compressed mode (decode = false).
  uint64_t bytes_read = 0;

  std::string Encode() const;
  static Result<BatchReply> Decode(Slice payload);
};

/// Daemon -> client, right after StreamOpened when the shm plane was
/// granted. The frame's sendmsg carries the segment's memfd as SCM_RIGHTS
/// ancillary data; the payload repeats the geometry so the client can
/// validate the received fd (fstat size >= segment_bytes) before mapping.
struct ShmSegmentMsg {
  uint64_t stream_id = 0;
  uint64_t segment_bytes = 0;
  uint32_t slots = 0;
  uint64_t slot_bytes = 0;

  std::string Encode() const;
  static Result<ShmSegmentMsg> Decode(Slice payload);
};

/// Client -> daemon verdict after attempting to map the segment. The daemon
/// serves descriptors only after an accepted ack; a rejected ack (fd never
/// arrived, mmap failed, segment undersized) pins the stream to the socket
/// plane and frees the segment.
struct ShmAckRequest {
  uint64_t stream_id = 0;
  bool accepted = false;

  std::string Encode() const;
  static Result<ShmAckRequest> Decode(Slice payload);
};

/// One image's placement inside a slot (offsets relative to the slot base).
struct WireImageDesc {
  uint32_t width = 0;
  uint32_t height = 0;
  uint32_t channels = 0;
  uint64_t offset = 0;
  uint64_t length = 0;  // == width*height*channels; enforced on decode.
};

/// Descriptor-plane sibling of BatchReply: the batch's pixels live in the
/// stream's shm slot; only placement metadata crosses the socket. The
/// client must send ReleaseSlot(slot, generation) once the trainer is done
/// with the view — the daemon will not reuse the slot until then.
struct BatchDescriptorReply {
  uint64_t stream_id = 0;
  int32_t record_index = -1;
  uint32_t scan_group = 0;
  std::vector<int64_t> labels;
  uint64_t bytes_read = 0;
  uint32_t slot = 0;
  uint64_t generation = 0;
  uint64_t payload_bytes = 0;  // Total pixel bytes placed in the slot.
  std::vector<WireImageDesc> images;

  std::string Encode() const;
  static Result<BatchDescriptorReply> Decode(Slice payload);
};

/// Client -> daemon slot credit. A release whose generation does not match
/// the slot's live tenancy is ignored (stale or forged).
struct ReleaseSlotRequest {
  uint64_t stream_id = 0;
  uint32_t slot = 0;
  uint64_t generation = 0;

  std::string Encode() const;
  static Result<ReleaseSlotRequest> Decode(Slice payload);
};

/// Bounds-checks a decoded descriptor against the negotiated ring geometry:
/// slot index in range, every image inside [0, slot_bytes), lengths
/// consistent with geometry and payload_bytes. A client MUST validate before
/// dereferencing slot memory — a malicious or corrupt descriptor must fail
/// here, not fault on the mapping.
Status ValidateBatchDescriptor(const BatchDescriptorReply& desc,
                               uint32_t num_slots, uint64_t slot_bytes);

struct StatsRequest {
  /// 0 = daemon-wide stats (all live streams); else just that stream.
  uint64_t stream_id = 0;

  std::string Encode() const;
  static Result<StatsRequest> Decode(Slice payload);
};

/// Per-stream serving counters (the serve-stage StageStats snapshot).
struct StreamStats {
  uint64_t stream_id = 0;
  std::string client_name;
  int64_t served_batches = 0;
  int64_t served_images = 0;
  uint64_t served_bytes = 0;
  /// Request receipt -> service start (admission/fairness queueing).
  double queue_wait_p50_sec = 0;
  double queue_wait_p99_sec = 0;
  /// Request receipt -> reply written (the client-visible service tail).
  double batch_p50_sec = 0;
  double batch_p99_sec = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  /// Data-plane accounting: batches that went out as shm descriptors (the
  /// rest used the socket plane), serve-stage blocks waiting for a slot
  /// credit, payload bytes the serve stage memcpy'd, and pipeline cache
  /// hits delivered zero-copy with the bytes those hits did not copy.
  int64_t shm_batches = 0;
  int64_t shm_slot_waits = 0;
  uint64_t bytes_copied = 0;
  int64_t zero_copy_hits = 0;
  uint64_t zero_copy_bytes = 0;
};

struct StatsReply {
  uint32_t active_streams = 0;
  uint32_t max_streams = 0;
  uint64_t cache_bytes_in_use = 0;
  uint64_t cache_capacity_bytes = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  std::vector<StreamStats> streams;

  std::string Encode() const;
  static Result<StatsReply> Decode(Slice payload);
};

struct CloseStreamRequest {
  uint64_t stream_id = 0;

  std::string Encode() const;
  static Result<CloseStreamRequest> Decode(Slice payload);
};

struct StreamClosedReply {
  uint64_t stream_id = 0;

  std::string Encode() const;
  static Result<StreamClosedReply> Decode(Slice payload);
};

struct ErrorReply {
  uint32_t code = 0;  // StatusCode numeric value.
  std::string message;
  /// Stream the error concerns (0 = connection-level).
  uint64_t stream_id = 0;

  std::string Encode() const;
  static Result<ErrorReply> Decode(Slice payload);

  Status ToStatus() const;
  static ErrorReply FromStatus(const Status& status, uint64_t stream_id = 0);
};

}  // namespace pcr::serve
