#include "serve/client.h"

#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

namespace pcr::serve {

// --- ServedBatch ------------------------------------------------------------

ServedBatch::~ServedBatch() { Release(); }

ServedBatch::ServedBatch(ServedBatch&& other) noexcept {
  *this = std::move(other);
}

ServedBatch& ServedBatch::operator=(ServedBatch&& other) noexcept {
  if (this != &other) {
    Release();
    stream_id = other.stream_id;
    record_index = other.record_index;
    scan_group = other.scan_group;
    labels = std::move(other.labels);
    bytes_read = other.bytes_read;
    end_of_stream = other.end_of_stream;
    client_ = other.client_;
    slot_ = other.slot_;
    generation_ = other.generation_;
    slot_base_ = other.slot_base_;
    desc_ = std::move(other.desc_);
    reply_ = std::move(other.reply_);
    other.client_ = nullptr;
    other.slot_base_ = nullptr;
  }
  return *this;
}

void ServedBatch::Release() {
  if (client_ != nullptr) {
    client_->ReleaseServedSlot(stream_id, slot_, generation_);
    client_ = nullptr;
  }
}

std::vector<ServedImageView> ServedBatch::images() const {
  std::vector<ServedImageView> views;
  if (slot_base_ != nullptr) {
    views.reserve(desc_.images.size());
    for (const WireImageDesc& d : desc_.images) {
      views.push_back({d.width, d.height, d.channels, slot_base_ + d.offset,
                       d.length});
    }
  } else {
    views.reserve(reply_.images.size());
    for (const WireImage& w : reply_.images) {
      views.push_back({w.width, w.height, w.channels,
                       reinterpret_cast<const uint8_t*>(w.pixels.data()),
                       w.pixels.size()});
    }
  }
  return views;
}

// --- PcrClient --------------------------------------------------------------

Result<std::unique_ptr<PcrClient>> PcrClient::Connect(
    const std::string& socket_path, const std::string& client_name) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("serve: socket path too long: " +
                                   socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("serve: socket(): " +
                           std::string(std::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("serve: connect(" + socket_path +
                           "): " + std::strerror(err));
  }
  std::unique_ptr<PcrClient> client(new PcrClient(fd));
  HelloRequest hello;
  hello.client_name = client_name;
  hello.shm_capable = true;
  PCR_RETURN_IF_ERROR(
      client->SendFrame(MessageType::kHello, Slice(hello.Encode())));
  PCR_ASSIGN_OR_RETURN(Frame frame,
                       client->ReadFrameOfType(MessageType::kHelloReply));
  PCR_ASSIGN_OR_RETURN(client->server_,
                       HelloReply::Decode(Slice(frame.payload)));
  return client;
}

PcrClient::~PcrClient() { Close(); }

void PcrClient::Close() {
  if (fd_ < 0) return;
  // Shut the socket down first: a receiver blocked in recvmsg unblocks and
  // drops read_mu_, after which the stray-fd drain below is race-free.
  ::shutdown(fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(read_mu_);
    for (int fd : received_fds_) ::close(fd);
    received_fds_.clear();
  }
  ::close(fd_);
  fd_ = -1;
}

Result<StreamOpenedReply> PcrClient::OpenStream(
    const OpenStreamRequest& request) {
  PCR_RETURN_IF_ERROR(
      SendFrame(MessageType::kOpenStream, Slice(request.Encode())));
  PCR_ASSIGN_OR_RETURN(Frame frame,
                       ReadFrameOfType(MessageType::kStreamOpened));
  PCR_ASSIGN_OR_RETURN(StreamOpenedReply reply,
                       StreamOpenedReply::Decode(Slice(frame.payload)));
  if (reply.shm_slots > 0) {
    // The daemon follows a slot-granting StreamOpened with the segment
    // frame (or a withdrawal); either way it must be consumed here.
    PCR_RETURN_IF_ERROR(SetupShmPlane(reply.stream_id));
  }
  return reply;
}

Status PcrClient::SetupShmPlane(uint64_t stream_id) {
  std::lock_guard<std::mutex> lock(read_mu_);
  PCR_ASSIGN_OR_RETURN(Frame frame,
                       ReadFrameOfTypeLocked(MessageType::kShmSegment));
  PCR_ASSIGN_OR_RETURN(ShmSegmentMsg msg,
                       ShmSegmentMsg::Decode(Slice(frame.payload)));
  if (msg.stream_id != stream_id) {
    return Status::FailedPrecondition(
        "serve: shm segment frame for unexpected stream " +
        std::to_string(msg.stream_id));
  }
  if (msg.slots == 0) return Status::OK();  // Withdrawal: socket plane.

  int fd = -1;
  if (!received_fds_.empty()) {
    fd = received_fds_.front();
    received_fds_.pop_front();
  }
  bool accepted = false;
  if (fd >= 0 && !reject_shm_for_test_ && msg.slot_bytes > 0 &&
      msg.segment_bytes >=
          static_cast<uint64_t>(msg.slots) * msg.slot_bytes) {
    // Adopt validates the segment is at least as large as advertised (and
    // closes the fd on both outcomes).
    Result<ShmSegment> segment =
        ShmSegment::Adopt(fd, static_cast<size_t>(msg.segment_bytes));
    if (segment.ok()) {
      StreamPlane plane;
      plane.segment = std::move(segment).MoveValue();
      plane.slots = msg.slots;
      plane.slot_bytes = msg.slot_bytes;
      std::lock_guard<std::mutex> plane_lock(shm_mu_);
      shm_streams_[stream_id] = std::move(plane);
      accepted = true;
    }
  } else if (fd >= 0) {
    ::close(fd);
  }
  ShmAckRequest ack;
  ack.stream_id = stream_id;
  ack.accepted = accepted;
  return SendFrame(MessageType::kShmAck, Slice(ack.Encode()));
}

Result<BatchReply> PcrClient::NextBatch(uint64_t stream_id) {
  PCR_RETURN_IF_ERROR(SendNextBatchRequest(stream_id));
  return ReceiveBatch(stream_id);
}

Status PcrClient::SendNextBatchRequest(uint64_t stream_id) {
  NextBatchRequest request;
  request.stream_id = stream_id;
  return SendFrame(MessageType::kNextBatch, Slice(request.Encode()));
}

Result<BatchReply> PcrClient::ReceiveBatch(uint64_t stream_id) {
  PCR_ASSIGN_OR_RETURN(ServedBatch batch, ReceiveServedBatch(stream_id));
  if (!batch.via_shm()) return std::move(batch.reply_);
  // Compat path: deep-copy the slot contents into a self-contained reply,
  // then let the batch's destructor return the slot.
  BatchReply reply;
  reply.stream_id = batch.stream_id;
  reply.record_index = batch.record_index;
  reply.scan_group = batch.scan_group;
  reply.labels = std::move(batch.labels);
  reply.bytes_read = batch.bytes_read;
  reply.end_of_stream = batch.end_of_stream;
  for (const ServedImageView& view : batch.images()) {
    WireImage wire;
    wire.width = view.width;
    wire.height = view.height;
    wire.channels = view.channels;
    wire.pixels.assign(reinterpret_cast<const char*>(view.data), view.length);
    reply.images.push_back(std::move(wire));
  }
  return reply;
}

Result<ServedBatch> PcrClient::ReceiveServedBatch(uint64_t stream_id) {
  std::lock_guard<std::mutex> lock(read_mu_);
  for (auto it = queued_batches_.begin(); it != queued_batches_.end(); ++it) {
    if (stream_id == 0 || it->stream_id == stream_id) {
      ServedBatch batch = std::move(*it);
      queued_batches_.erase(it);
      return batch;
    }
  }
  while (true) {
    Frame frame;
    {
      auto read = ReadFrame();
      if (!read.ok()) return read.status();
      frame = std::move(*read);
    }
    if (frame.type == MessageType::kError) {
      PCR_ASSIGN_OR_RETURN(ErrorReply error,
                           ErrorReply::Decode(Slice(frame.payload)));
      return error.ToStatus();
    }
    ServedBatch batch;
    if (frame.type == MessageType::kBatchReply) {
      PCR_ASSIGN_OR_RETURN(BatchReply reply,
                           BatchReply::Decode(Slice(frame.payload)));
      batch = FromReply(std::move(reply));
    } else if (frame.type == MessageType::kBatchDescriptor) {
      PCR_ASSIGN_OR_RETURN(BatchDescriptorReply desc,
                           BatchDescriptorReply::Decode(Slice(frame.payload)));
      PCR_ASSIGN_OR_RETURN(batch, ResolveDescriptor(std::move(desc)));
    } else {
      return Status::FailedPrecondition(
          "serve: unexpected message type " +
          std::to_string(static_cast<int>(frame.type)) +
          " while waiting for a batch");
    }
    if (stream_id == 0 || batch.stream_id == stream_id) return batch;
    queued_batches_.push_back(std::move(batch));  // Another stream's batch.
  }
}

ServedBatch PcrClient::FromReply(BatchReply&& reply) const {
  ServedBatch batch;
  batch.stream_id = reply.stream_id;
  batch.record_index = reply.record_index;
  batch.scan_group = reply.scan_group;
  batch.labels = reply.labels;
  batch.bytes_read = reply.bytes_read;
  batch.end_of_stream = reply.end_of_stream;
  batch.reply_ = std::move(reply);
  return batch;
}

Result<ServedBatch> PcrClient::ResolveDescriptor(BatchDescriptorReply&& desc) {
  const uint8_t* base = nullptr;
  {
    std::lock_guard<std::mutex> lock(shm_mu_);
    auto it = shm_streams_.find(desc.stream_id);
    if (it == shm_streams_.end()) {
      return Status::FailedPrecondition(
          "serve: batch descriptor for stream " +
          std::to_string(desc.stream_id) + " without a mapped segment");
    }
    // Every offset/length is checked against the negotiated slot geometry
    // before the first dereference — a corrupt or hostile descriptor cannot
    // walk the client outside its mapping.
    PCR_RETURN_IF_ERROR(
        ValidateBatchDescriptor(desc, it->second.slots,
                                it->second.slot_bytes));
    base = it->second.segment.data() +
           static_cast<uint64_t>(desc.slot) * it->second.slot_bytes;
  }
  ServedBatch batch;
  batch.stream_id = desc.stream_id;
  batch.record_index = desc.record_index;
  batch.scan_group = desc.scan_group;
  batch.labels = desc.labels;
  batch.bytes_read = desc.bytes_read;
  batch.client_ = this;
  batch.slot_ = desc.slot;
  batch.generation_ = desc.generation;
  batch.slot_base_ = base;
  batch.desc_ = std::move(desc);
  return batch;
}

void PcrClient::ReleaseServedSlot(uint64_t stream_id, uint32_t slot,
                                  uint64_t generation) {
  if (fd_ < 0) return;  // Hung up; the daemon reclaims on disconnect.
  ReleaseSlotRequest request;
  request.stream_id = stream_id;
  request.slot = slot;
  request.generation = generation;
  // Best-effort: a failed credit only costs one slot until teardown.
  (void)SendFrame(MessageType::kReleaseSlot, Slice(request.Encode()));
}

Result<StatsReply> PcrClient::GetStats(uint64_t stream_id) {
  StatsRequest request;
  request.stream_id = stream_id;
  PCR_RETURN_IF_ERROR(SendFrame(MessageType::kStats, Slice(request.Encode())));
  PCR_ASSIGN_OR_RETURN(Frame frame, ReadFrameOfType(MessageType::kStatsReply));
  return StatsReply::Decode(Slice(frame.payload));
}

Result<StreamClosedReply> PcrClient::CloseStream(uint64_t stream_id) {
  CloseStreamRequest request;
  request.stream_id = stream_id;
  PCR_RETURN_IF_ERROR(
      SendFrame(MessageType::kCloseStream, Slice(request.Encode())));
  PCR_ASSIGN_OR_RETURN(Frame frame,
                       ReadFrameOfType(MessageType::kStreamClosed));
  return StreamClosedReply::Decode(Slice(frame.payload));
}

Result<Image> PcrClient::ToImage(const WireImage& wire) {
  if (wire.width == 0 || wire.height == 0 ||
      (wire.channels != 1 && wire.channels != 3)) {
    return Status::InvalidArgument("serve: malformed served image geometry");
  }
  Image image(static_cast<int>(wire.width), static_cast<int>(wire.height),
              static_cast<int>(wire.channels));
  if (wire.pixels.size() != image.size_bytes()) {
    return Status::InvalidArgument("serve: served pixel payload size");
  }
  std::memcpy(image.data(), wire.pixels.data(), wire.pixels.size());
  return image;
}

Result<Image> PcrClient::ToImage(const ServedImageView& view) {
  if (view.width == 0 || view.height == 0 ||
      (view.channels != 1 && view.channels != 3) || view.data == nullptr) {
    return Status::InvalidArgument("serve: malformed served image view");
  }
  Image image(static_cast<int>(view.width), static_cast<int>(view.height),
              static_cast<int>(view.channels));
  if (view.length != image.size_bytes()) {
    return Status::InvalidArgument("serve: served pixel payload size");
  }
  std::memcpy(image.data(), view.data, view.length);
  return image;
}

Status PcrClient::SendFrame(MessageType type, Slice payload) {
  if (fd_ < 0) return Status::FailedPrecondition("serve: client closed");
  PCR_RETURN_IF_ERROR(CheckFramePayloadSize(payload.size()));
  const std::string frame = EncodeFrame(type, payload);
  std::lock_guard<std::mutex> lock(write_mu_);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("serve: send(): " +
                             std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Frame> PcrClient::ReadFrame() {
  Frame frame;
  std::vector<char> buf(256 << 10);
  while (true) {
    switch (parser_.Next(&frame)) {
      case FrameParser::Outcome::kFrame:
        return frame;
      case FrameParser::Outcome::kError:
        return parser_.status();
      case FrameParser::Outcome::kNeedMore:
        break;
    }
    // recvmsg instead of recv: the daemon attaches shm segment fds as
    // SCM_RIGHTS ancillary data, which a plain recv would leak (the kernel
    // would close-on-skip them only at hangup). Harvest every fd delivered
    // alongside stream bytes; SetupShmPlane claims them in arrival order.
    struct iovec iov;
    iov.iov_base = buf.data();
    iov.iov_len = buf.size();
    alignas(struct cmsghdr) char cbuf[CMSG_SPACE(8 * sizeof(int))];
    struct msghdr msg {};
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    msg.msg_control = cbuf;
    msg.msg_controllen = sizeof(cbuf);
    const ssize_t n = ::recvmsg(fd_, &msg, MSG_CMSG_CLOEXEC);
    if (n == 0) {
      return Status::Aborted("serve: daemon closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("serve: recvmsg(): " +
                             std::string(std::strerror(errno)));
    }
    for (struct cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr;
         cmsg = CMSG_NXTHDR(&msg, cmsg)) {
      if (cmsg->cmsg_level != SOL_SOCKET || cmsg->cmsg_type != SCM_RIGHTS) {
        continue;
      }
      const size_t bytes = cmsg->cmsg_len - CMSG_LEN(0);
      const size_t count = bytes / sizeof(int);
      for (size_t i = 0; i < count; ++i) {
        int fd = -1;
        std::memcpy(&fd, CMSG_DATA(cmsg) + i * sizeof(int), sizeof(int));
        if (fd >= 0) received_fds_.push_back(fd);
      }
    }
    parser_.Feed(Slice(buf.data(), static_cast<size_t>(n)));
  }
}

Result<Frame> PcrClient::ReadFrameOfType(MessageType want) {
  std::lock_guard<std::mutex> lock(read_mu_);
  return ReadFrameOfTypeLocked(want);
}

Result<Frame> PcrClient::ReadFrameOfTypeLocked(MessageType want) {
  while (true) {
    PCR_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    if (frame.type == want) return frame;
    if (frame.type == MessageType::kError) {
      PCR_ASSIGN_OR_RETURN(ErrorReply error,
                           ErrorReply::Decode(Slice(frame.payload)));
      return error.ToStatus();
    }
    if (frame.type == MessageType::kBatchReply) {
      PCR_ASSIGN_OR_RETURN(BatchReply reply,
                           BatchReply::Decode(Slice(frame.payload)));
      queued_batches_.push_back(FromReply(std::move(reply)));
      continue;
    }
    if (frame.type == MessageType::kBatchDescriptor) {
      PCR_ASSIGN_OR_RETURN(BatchDescriptorReply desc,
                           BatchDescriptorReply::Decode(Slice(frame.payload)));
      PCR_ASSIGN_OR_RETURN(ServedBatch batch,
                           ResolveDescriptor(std::move(desc)));
      queued_batches_.push_back(std::move(batch));
      continue;
    }
    return Status::FailedPrecondition(
        "serve: unexpected message type " +
        std::to_string(static_cast<int>(frame.type)));
  }
}

}  // namespace pcr::serve
