#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

namespace pcr::serve {

Result<std::unique_ptr<PcrClient>> PcrClient::Connect(
    const std::string& socket_path, const std::string& client_name) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("serve: socket path too long: " +
                                   socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("serve: socket(): " +
                           std::string(std::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("serve: connect(" + socket_path +
                           "): " + std::strerror(err));
  }
  std::unique_ptr<PcrClient> client(new PcrClient(fd));
  HelloRequest hello;
  hello.client_name = client_name;
  PCR_RETURN_IF_ERROR(
      client->SendFrame(MessageType::kHello, Slice(hello.Encode())));
  PCR_ASSIGN_OR_RETURN(Frame frame,
                       client->ReadFrameOfType(MessageType::kHelloReply));
  PCR_ASSIGN_OR_RETURN(client->server_,
                       HelloReply::Decode(Slice(frame.payload)));
  return client;
}

PcrClient::~PcrClient() { Close(); }

void PcrClient::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

Result<StreamOpenedReply> PcrClient::OpenStream(
    const OpenStreamRequest& request) {
  PCR_RETURN_IF_ERROR(
      SendFrame(MessageType::kOpenStream, Slice(request.Encode())));
  PCR_ASSIGN_OR_RETURN(Frame frame,
                       ReadFrameOfType(MessageType::kStreamOpened));
  return StreamOpenedReply::Decode(Slice(frame.payload));
}

Result<BatchReply> PcrClient::NextBatch(uint64_t stream_id) {
  PCR_RETURN_IF_ERROR(SendNextBatchRequest(stream_id));
  return ReceiveBatch(stream_id);
}

Status PcrClient::SendNextBatchRequest(uint64_t stream_id) {
  NextBatchRequest request;
  request.stream_id = stream_id;
  return SendFrame(MessageType::kNextBatch, Slice(request.Encode()));
}

Result<BatchReply> PcrClient::ReceiveBatch(uint64_t stream_id) {
  std::lock_guard<std::mutex> lock(read_mu_);
  for (auto it = queued_batches_.begin(); it != queued_batches_.end(); ++it) {
    if (stream_id == 0 || it->stream_id == stream_id) {
      BatchReply reply = std::move(*it);
      queued_batches_.erase(it);
      return reply;
    }
  }
  while (true) {
    Frame frame;
    {
      auto read = ReadFrame();
      if (!read.ok()) return read.status();
      frame = std::move(*read);
    }
    if (frame.type == MessageType::kError) {
      PCR_ASSIGN_OR_RETURN(ErrorReply error,
                           ErrorReply::Decode(Slice(frame.payload)));
      return error.ToStatus();
    }
    if (frame.type != MessageType::kBatchReply) {
      return Status::FailedPrecondition(
          "serve: unexpected message type " +
          std::to_string(static_cast<int>(frame.type)) +
          " while waiting for a batch");
    }
    PCR_ASSIGN_OR_RETURN(BatchReply reply,
                         BatchReply::Decode(Slice(frame.payload)));
    if (stream_id == 0 || reply.stream_id == stream_id) return reply;
    queued_batches_.push_back(std::move(reply));  // Another stream's batch.
  }
}

Result<StatsReply> PcrClient::GetStats(uint64_t stream_id) {
  StatsRequest request;
  request.stream_id = stream_id;
  PCR_RETURN_IF_ERROR(SendFrame(MessageType::kStats, Slice(request.Encode())));
  PCR_ASSIGN_OR_RETURN(Frame frame, ReadFrameOfType(MessageType::kStatsReply));
  return StatsReply::Decode(Slice(frame.payload));
}

Result<StreamClosedReply> PcrClient::CloseStream(uint64_t stream_id) {
  CloseStreamRequest request;
  request.stream_id = stream_id;
  PCR_RETURN_IF_ERROR(
      SendFrame(MessageType::kCloseStream, Slice(request.Encode())));
  PCR_ASSIGN_OR_RETURN(Frame frame,
                       ReadFrameOfType(MessageType::kStreamClosed));
  return StreamClosedReply::Decode(Slice(frame.payload));
}

Result<Image> PcrClient::ToImage(const WireImage& wire) {
  if (wire.width == 0 || wire.height == 0 ||
      (wire.channels != 1 && wire.channels != 3)) {
    return Status::InvalidArgument("serve: malformed served image geometry");
  }
  Image image(static_cast<int>(wire.width), static_cast<int>(wire.height),
              static_cast<int>(wire.channels));
  if (wire.pixels.size() != image.size_bytes()) {
    return Status::InvalidArgument("serve: served pixel payload size");
  }
  std::memcpy(image.data(), wire.pixels.data(), wire.pixels.size());
  return image;
}

Status PcrClient::SendFrame(MessageType type, Slice payload) {
  if (fd_ < 0) return Status::FailedPrecondition("serve: client closed");
  PCR_RETURN_IF_ERROR(CheckFramePayloadSize(payload.size()));
  const std::string frame = EncodeFrame(type, payload);
  std::lock_guard<std::mutex> lock(write_mu_);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("serve: send(): " +
                             std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Frame> PcrClient::ReadFrame() {
  Frame frame;
  std::vector<char> buf(256 << 10);
  while (true) {
    switch (parser_.Next(&frame)) {
      case FrameParser::Outcome::kFrame:
        return frame;
      case FrameParser::Outcome::kError:
        return parser_.status();
      case FrameParser::Outcome::kNeedMore:
        break;
    }
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n == 0) {
      return Status::Aborted("serve: daemon closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("serve: recv(): " +
                             std::string(std::strerror(errno)));
    }
    parser_.Feed(Slice(buf.data(), static_cast<size_t>(n)));
  }
}

Result<Frame> PcrClient::ReadFrameOfType(MessageType want) {
  std::lock_guard<std::mutex> lock(read_mu_);
  while (true) {
    PCR_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    if (frame.type == want) return frame;
    if (frame.type == MessageType::kError) {
      PCR_ASSIGN_OR_RETURN(ErrorReply error,
                           ErrorReply::Decode(Slice(frame.payload)));
      return error.ToStatus();
    }
    if (frame.type == MessageType::kBatchReply) {
      PCR_ASSIGN_OR_RETURN(BatchReply reply,
                           BatchReply::Decode(Slice(frame.payload)));
      queued_batches_.push_back(std::move(reply));
      continue;
    }
    return Status::FailedPrecondition(
        "serve: unexpected message type " +
        std::to_string(static_cast<int>(frame.type)));
  }
}

}  // namespace pcr::serve
