// PcrClient: blocking client for the PCR serving daemon (serve/daemon.h).
// One instance owns one unix-socket connection and speaks the
// serve/protocol.h frame protocol.
//
// Thread model: the send path (SendNextBatchRequest) and the receive path
// (ReceiveBatch) take independent locks, so an open-loop client may run one
// sender thread and one receiver thread concurrently — that is exactly how
// bench_serve_loadgen pipelines requests. The combined RPC helpers
// (OpenStream / NextBatch / GetStats / CloseStream) send and then receive,
// so they must not run concurrently with a dedicated receiver thread.
//
// Multiple streams can share one client; BatchReply frames for other
// streams encountered while waiting are queued, not dropped.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "image/image.h"
#include "serve/protocol.h"
#include "util/result.h"

namespace pcr::serve {

class PcrClient {
 public:
  /// Connects and completes the Hello handshake.
  static Result<std::unique_ptr<PcrClient>> Connect(
      const std::string& socket_path,
      const std::string& client_name = "pcr-client");

  ~PcrClient();
  PcrClient(const PcrClient&) = delete;
  PcrClient& operator=(const PcrClient&) = delete;

  /// The daemon's Hello response (limits and identity).
  const HelloReply& server() const { return server_; }

  Result<StreamOpenedReply> OpenStream(const OpenStreamRequest& request);

  /// One blocking request/response round trip.
  Result<BatchReply> NextBatch(uint64_t stream_id);

  /// Split halves of NextBatch for pipelined use: issue up to the stream's
  /// granted in-flight cap, then drain replies.
  Status SendNextBatchRequest(uint64_t stream_id);
  Result<BatchReply> ReceiveBatch(uint64_t stream_id);

  Result<StatsReply> GetStats(uint64_t stream_id = 0);
  Result<StreamClosedReply> CloseStream(uint64_t stream_id);

  /// Hangs up (in-flight requests on the daemon are abandoned; the daemon
  /// releases the connection's streams). Idempotent; the destructor calls
  /// it.
  void Close();

  /// Converts a served image to the library's Image type (validated).
  static Result<Image> ToImage(const WireImage& wire);

 private:
  explicit PcrClient(int fd) : fd_(fd) {}

  Status SendFrame(MessageType type, Slice payload);
  /// Reads whole frames off the socket until the parser yields one.
  Result<Frame> ReadFrame();
  /// Reads until a frame of `want` arrives; ErrorReply frames become their
  /// carried Status, BatchReply frames are queued for ReceiveBatch.
  Result<Frame> ReadFrameOfType(MessageType want);

  int fd_;
  HelloReply server_;

  std::mutex write_mu_;

  std::mutex read_mu_;
  FrameParser parser_;
  std::deque<BatchReply> queued_batches_;
};

}  // namespace pcr::serve
