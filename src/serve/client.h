// PcrClient: blocking client for the PCR serving daemon (serve/daemon.h).
// One instance owns one unix-socket connection and speaks the
// serve/protocol.h frame protocol.
//
// Thread model: the send path (SendNextBatchRequest) and the receive path
// (ReceiveBatch / ReceiveServedBatch) take independent locks, so an
// open-loop client may run one sender thread and one receiver thread
// concurrently — that is exactly how bench_serve_loadgen pipelines
// requests. The combined RPC helpers (OpenStream / NextBatch / GetStats /
// CloseStream) send and then receive, so they must not run concurrently
// with a dedicated receiver thread.
//
// Shared-memory data plane: the client always announces shm capability in
// Hello; a stream actually negotiates the plane only when its
// OpenStreamRequest sets `shm_plane` and the daemon grants slots. OpenStream
// then consumes the daemon's ShmSegment frame (whose SCM_RIGHTS fd the
// receive path harvested), maps and validates the segment, and answers
// ShmAck. On that plane batches arrive as descriptors; ReceiveServedBatch
// resolves them into ServedBatch views over the mapped segment, and the view
// returns its slot to the daemon on destruction. Every failure along the way
// (no fd delivered, undersized segment, mmap error) degrades the stream to
// the socket plane — never to a stream error.
//
// Multiple streams can share one client; batch frames for other streams
// encountered while waiting are queued, not dropped.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "image/image.h"
#include "serve/protocol.h"
#include "util/result.h"
#include "util/shm_ring.h"

namespace pcr::serve {

class PcrClient;

/// A zero-copy view of one served image. `data` points into the shared
/// segment (shm plane) or the reply's own buffers (socket plane) and is
/// valid for the lifetime of the ServedBatch that produced it.
struct ServedImageView {
  uint32_t width = 0;
  uint32_t height = 0;
  uint32_t channels = 0;
  const uint8_t* data = nullptr;
  uint64_t length = 0;
};

/// One delivered batch, viewed in place. On the shm plane the pixels live in
/// the daemon's segment and the slot stays lent to this object — the
/// destructor (or Release()) returns it, which also invalidates the views.
/// Move-only; must not outlive the PcrClient that produced it.
class ServedBatch {
 public:
  ServedBatch() = default;
  ~ServedBatch();
  ServedBatch(ServedBatch&& other) noexcept;
  ServedBatch& operator=(ServedBatch&& other) noexcept;
  ServedBatch(const ServedBatch&) = delete;
  ServedBatch& operator=(const ServedBatch&) = delete;

  uint64_t stream_id = 0;
  int64_t record_index = -1;
  uint32_t scan_group = 0;
  std::vector<int64_t> labels;
  uint64_t bytes_read = 0;
  bool end_of_stream = false;

  /// True when the pixels view the shared segment (a slot is or was held).
  bool via_shm() const { return slot_base_ != nullptr; }

  /// Zero-copy views of the decoded images, either plane.
  std::vector<ServedImageView> images() const;

  /// Compressed payloads (socket plane only — the shm plane carries decoded
  /// pixels exclusively).
  const std::vector<std::string>& jpegs() const { return reply_.jpegs; }

  /// Returns the shm slot to the daemon now instead of at destruction.
  /// After this the daemon may reuse the slot, so shm views are invalid.
  void Release();

 private:
  friend class PcrClient;

  PcrClient* client_ = nullptr;  // Non-null while a shm slot is held.
  uint32_t slot_ = 0;
  uint64_t generation_ = 0;
  const uint8_t* slot_base_ = nullptr;  // Segment base + slot offset.
  BatchDescriptorReply desc_;           // Shm plane geometry.
  BatchReply reply_;                    // Socket plane payload.
};

class PcrClient {
 public:
  /// Connects and completes the Hello handshake (announcing shm capability).
  static Result<std::unique_ptr<PcrClient>> Connect(
      const std::string& socket_path,
      const std::string& client_name = "pcr-client");

  ~PcrClient();
  PcrClient(const PcrClient&) = delete;
  PcrClient& operator=(const PcrClient&) = delete;

  /// The daemon's Hello response (limits and identity).
  const HelloReply& server() const { return server_; }

  /// Opens a stream. When `request.shm_plane` is set and the daemon grants
  /// slots, this also maps the passed segment and acknowledges the plane;
  /// any setup failure falls back to the socket plane silently.
  Result<StreamOpenedReply> OpenStream(const OpenStreamRequest& request);

  /// One blocking request/response round trip (always a deep copy).
  Result<BatchReply> NextBatch(uint64_t stream_id);

  /// Split halves of NextBatch for pipelined use: issue up to the stream's
  /// granted in-flight cap, then drain replies. ReceiveBatch deep-copies
  /// shm deliveries into a BatchReply and releases the slot immediately;
  /// ReceiveServedBatch hands out the zero-copy view.
  Status SendNextBatchRequest(uint64_t stream_id);
  Result<BatchReply> ReceiveBatch(uint64_t stream_id);
  Result<ServedBatch> ReceiveServedBatch(uint64_t stream_id);

  Result<StatsReply> GetStats(uint64_t stream_id = 0);
  Result<StreamClosedReply> CloseStream(uint64_t stream_id);

  /// Hangs up (in-flight requests on the daemon are abandoned; the daemon
  /// releases the connection's streams and reclaims lent shm slots).
  /// Idempotent; the destructor calls it. Outstanding ServedBatch views
  /// into shm segments stay mapped until the client is destroyed.
  void Close();

  /// Test hook: answer the next segment passes with a rejecting ShmAck, as
  /// a client that failed to map would. Set before OpenStream.
  void set_reject_shm_for_test(bool reject) { reject_shm_for_test_ = reject; }

  /// Converts a served image to the library's Image type (validated copy).
  static Result<Image> ToImage(const WireImage& wire);
  static Result<Image> ToImage(const ServedImageView& view);

 private:
  friend class ServedBatch;

  /// A stream's mapped shm plane.
  struct StreamPlane {
    ShmSegment segment;
    uint32_t slots = 0;
    uint64_t slot_bytes = 0;
  };

  explicit PcrClient(int fd) : fd_(fd) {}

  Status SendFrame(MessageType type, Slice payload);
  /// Reads whole frames off the socket until the parser yields one,
  /// harvesting any SCM_RIGHTS fds into received_fds_.
  Result<Frame> ReadFrame();
  /// Reads until a frame of `want` arrives; ErrorReply frames become their
  /// carried Status, batch frames (either plane) are queued for the receive
  /// calls. Locked wrapper / lock-held core.
  Result<Frame> ReadFrameOfType(MessageType want);
  Result<Frame> ReadFrameOfTypeLocked(MessageType want);

  /// Consumes the ShmSegment frame that follows a slot-granting
  /// StreamOpened, maps the fd, installs the plane, and sends ShmAck.
  /// Failure to map degrades to the socket plane and is not an error; only
  /// a dead socket propagates.
  Status SetupShmPlane(uint64_t stream_id);

  /// Turns a descriptor frame into a ServedBatch view (bounds-checked
  /// against the mapped plane before any dereference).
  Result<ServedBatch> ResolveDescriptor(BatchDescriptorReply&& desc);
  ServedBatch FromReply(BatchReply&& reply) const;

  /// Returns a slot to the daemon (best-effort ReleaseSlot frame).
  void ReleaseServedSlot(uint64_t stream_id, uint32_t slot,
                         uint64_t generation);

  int fd_;
  HelloReply server_;
  bool reject_shm_for_test_ = false;

  std::mutex write_mu_;

  std::mutex read_mu_;
  FrameParser parser_;
  std::deque<ServedBatch> queued_batches_;
  /// SCM_RIGHTS fds harvested by ReadFrame, in arrival order; OpenStream
  /// claims them for segment mapping, Close() disposes of strays.
  std::deque<int> received_fds_;

  std::mutex shm_mu_;
  std::unordered_map<uint64_t, StreamPlane> shm_streams_;
};

}  // namespace pcr::serve
