#include "serve/protocol.h"

#include <cstring>

#include "wire/wire.h"

namespace pcr::serve {

namespace {

uint32_t ReadLe32(const char* p) {
  const uint8_t* u = reinterpret_cast<const uint8_t*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

void AppendLe32(std::string* out, uint32_t v) {
  char bytes[4] = {static_cast<char>(v & 0xff),
                   static_cast<char>((v >> 8) & 0xff),
                   static_cast<char>((v >> 16) & 0xff),
                   static_cast<char>((v >> 24) & 0xff)};
  out->append(bytes, 4);
}

bool ValidMessageType(uint8_t type) {
  return type >= static_cast<uint8_t>(MessageType::kHello) &&
         type <= static_cast<uint8_t>(MessageType::kReleaseSlot);
}

}  // namespace

FrameParser::Outcome FrameParser::Next(Frame* frame) {
  if (!status_.ok()) return Outcome::kError;
  if (buffer_.size() < 4) return Outcome::kNeedMore;
  const uint64_t length = ReadLe32(buffer_.data());
  // Reject hostile/corrupt lengths from the header alone: nothing has been
  // allocated for the payload yet, so a 4 GiB prefix costs us 4 bytes.
  if (length < 1 || length > max_frame_bytes_) {
    status_ = Status::InvalidArgument(
        "serve frame: length prefix " + std::to_string(length) +
        " outside [1, " + std::to_string(max_frame_bytes_) + "]");
    return Outcome::kError;
  }
  if (buffer_.size() < 4 + length) return Outcome::kNeedMore;
  const uint8_t type = static_cast<uint8_t>(buffer_[4]);
  if (!ValidMessageType(type)) {
    status_ = Status::Corruption("serve frame: unknown message type " +
                                 std::to_string(type));
    return Outcome::kError;
  }
  frame->type = static_cast<MessageType>(type);
  frame->payload.assign(buffer_, 5, static_cast<size_t>(length) - 1);
  buffer_.erase(0, 4 + static_cast<size_t>(length));
  return Outcome::kFrame;
}

std::string EncodeFrame(MessageType type, Slice payload) {
  std::string out;
  out.reserve(5 + payload.size());
  AppendLe32(&out, static_cast<uint32_t>(payload.size() + 1));
  out.push_back(static_cast<char>(type));
  out.append(payload.data(), payload.size());
  return out;
}

Status CheckFramePayloadSize(uint64_t payload_bytes,
                             uint64_t max_frame_bytes) {
  if (payload_bytes + 1 > max_frame_bytes) {
    return Status::InvalidArgument(
        "serve frame: payload of " + std::to_string(payload_bytes) +
        " bytes exceeds the " + std::to_string(max_frame_bytes) +
        "-byte frame ceiling");
  }
  return Status::OK();
}

// --- Message encode/decode ------------------------------------------------
// Decoders tolerate unknown fields (skip) for forward compatibility, fail
// on malformed wire data, and leave absent fields at their defaults.

#define PCR_SERVE_DECODE_LOOP(payload, field_var, body)              \
  wire::WireReader reader_(payload);                                 \
  wire::WireField field_var;                                         \
  while (reader_.Next(&field_var)) {                                 \
    switch (field_var.field) { body default : break; }               \
  }                                                                  \
  PCR_RETURN_IF_ERROR(reader_.status())

std::string HelloRequest::Encode() const {
  wire::WireWriter w;
  w.PutUint64(1, protocol_version);
  w.PutString(2, client_name);
  w.PutBool(3, shm_capable);
  return w.Release();
}

Result<HelloRequest> HelloRequest::Decode(Slice payload) {
  HelloRequest msg;
  msg.shm_capable = false;  // Absent field = peer predates the capability.
  PCR_SERVE_DECODE_LOOP(
      payload, f,
      case 1 : msg.protocol_version = static_cast<uint32_t>(f.varint);
      break; case 2 : msg.client_name = f.bytes.ToString();
      break; case 3 : msg.shm_capable = f.varint != 0; break;);
  return msg;
}

std::string HelloReply::Encode() const {
  wire::WireWriter w;
  w.PutUint64(1, protocol_version);
  w.PutString(2, server_name);
  w.PutUint64(3, max_streams);
  w.PutUint64(4, max_inflight_per_stream);
  w.PutBool(5, shm_supported);
  return w.Release();
}

Result<HelloReply> HelloReply::Decode(Slice payload) {
  HelloReply msg;
  PCR_SERVE_DECODE_LOOP(
      payload, f,
      case 1 : msg.protocol_version = static_cast<uint32_t>(f.varint);
      break; case 2 : msg.server_name = f.bytes.ToString();
      break; case 3 : msg.max_streams = static_cast<uint32_t>(f.varint);
      break; case 4
      : msg.max_inflight_per_stream = static_cast<uint32_t>(f.varint);
      break; case 5 : msg.shm_supported = f.varint != 0; break;);
  return msg;
}

std::string OpenStreamRequest::Encode() const {
  wire::WireWriter w;
  w.PutString(1, dataset_dir);
  w.PutUint64(2, scan_group);
  w.PutUint64(3, max_epochs);
  w.PutBool(4, shuffle);
  w.PutUint64(5, seed);
  w.PutBool(6, decode);
  w.PutUint64(7, max_inflight);
  w.PutBool(8, shm_plane);
  return w.Release();
}

Result<OpenStreamRequest> OpenStreamRequest::Decode(Slice payload) {
  OpenStreamRequest msg;
  PCR_SERVE_DECODE_LOOP(
      payload, f,
      case 1 : msg.dataset_dir = f.bytes.ToString();
      break; case 2 : msg.scan_group = static_cast<uint32_t>(f.varint);
      break; case 3 : msg.max_epochs = static_cast<uint32_t>(f.varint);
      break; case 4 : msg.shuffle = f.varint != 0;
      break; case 5 : msg.seed = f.varint;
      break; case 6 : msg.decode = f.varint != 0;
      break; case 7 : msg.max_inflight = static_cast<uint32_t>(f.varint);
      break; case 8 : msg.shm_plane = f.varint != 0; break;);
  return msg;
}

std::string StreamOpenedReply::Encode() const {
  wire::WireWriter w;
  w.PutUint64(1, stream_id);
  w.PutUint64(2, num_records);
  w.PutUint64(3, num_images);
  w.PutUint64(4, num_scan_groups);
  w.PutUint64(5, scan_group);
  w.PutUint64(6, max_inflight);
  w.PutUint64(7, cache_dataset_id);
  w.PutUint64(8, shm_slots);
  w.PutUint64(9, shm_slot_bytes);
  return w.Release();
}

Result<StreamOpenedReply> StreamOpenedReply::Decode(Slice payload) {
  StreamOpenedReply msg;
  PCR_SERVE_DECODE_LOOP(
      payload, f,
      case 1 : msg.stream_id = f.varint;
      break; case 2 : msg.num_records = static_cast<uint32_t>(f.varint);
      break; case 3 : msg.num_images = static_cast<uint32_t>(f.varint);
      break; case 4 : msg.num_scan_groups = static_cast<uint32_t>(f.varint);
      break; case 5 : msg.scan_group = static_cast<uint32_t>(f.varint);
      break; case 6 : msg.max_inflight = static_cast<uint32_t>(f.varint);
      break; case 7 : msg.cache_dataset_id = f.varint;
      break; case 8 : msg.shm_slots = static_cast<uint32_t>(f.varint);
      break; case 9 : msg.shm_slot_bytes = f.varint; break;);
  return msg;
}

std::string NextBatchRequest::Encode() const {
  wire::WireWriter w;
  w.PutUint64(1, stream_id);
  return w.Release();
}

Result<NextBatchRequest> NextBatchRequest::Decode(Slice payload) {
  NextBatchRequest msg;
  PCR_SERVE_DECODE_LOOP(payload, f, case 1 : msg.stream_id = f.varint;
                        break;);
  return msg;
}

std::string BatchReply::Encode() const {
  wire::WireWriter w;
  w.PutUint64(1, stream_id);
  w.PutBool(2, end_of_stream);
  w.PutSint64(3, record_index);
  w.PutUint64(4, scan_group);
  std::vector<uint64_t> packed_labels;
  packed_labels.reserve(labels.size());
  for (const int64_t label : labels) {
    packed_labels.push_back(wire::ZigZagEncode(label));
  }
  w.PutPackedUint64(5, packed_labels);
  for (const WireImage& img : images) {
    wire::WireWriter iw;
    iw.PutUint64(1, img.width);
    iw.PutUint64(2, img.height);
    iw.PutUint64(3, img.channels);
    iw.PutBytes(4, Slice(img.pixels));
    w.PutMessage(6, iw);
  }
  for (const std::string& jpeg : jpegs) w.PutBytes(7, Slice(jpeg));
  w.PutUint64(8, bytes_read);
  return w.Release();
}

Result<BatchReply> BatchReply::Decode(Slice payload) {
  BatchReply msg;
  wire::WireReader reader(payload);
  wire::WireField f;
  while (reader.Next(&f)) {
    switch (f.field) {
      case 1:
        msg.stream_id = f.varint;
        break;
      case 2:
        msg.end_of_stream = f.varint != 0;
        break;
      case 3:
        msg.record_index = static_cast<int32_t>(f.AsSint64());
        break;
      case 4:
        msg.scan_group = static_cast<uint32_t>(f.varint);
        break;
      case 5: {
        PCR_ASSIGN_OR_RETURN(std::vector<uint64_t> packed,
                             wire::WireReader::DecodePackedUint64(f.bytes));
        msg.labels.reserve(packed.size());
        for (const uint64_t v : packed) {
          msg.labels.push_back(wire::ZigZagDecode(v));
        }
        break;
      }
      case 6: {
        WireImage img;
        wire::WireReader ir(f.bytes);
        wire::WireField imf;
        while (ir.Next(&imf)) {
          switch (imf.field) {
            case 1: img.width = static_cast<uint32_t>(imf.varint); break;
            case 2: img.height = static_cast<uint32_t>(imf.varint); break;
            case 3: img.channels = static_cast<uint32_t>(imf.varint); break;
            case 4: img.pixels = imf.bytes.ToString(); break;
            default: break;
          }
        }
        PCR_RETURN_IF_ERROR(ir.status());
        const uint64_t want = static_cast<uint64_t>(img.width) * img.height *
                              img.channels;
        if (img.pixels.size() != want) {
          return Status::Corruption("serve batch: image pixel bytes " +
                                    std::to_string(img.pixels.size()) +
                                    " != w*h*c " + std::to_string(want));
        }
        msg.images.push_back(std::move(img));
        break;
      }
      case 7:
        msg.jpegs.push_back(f.bytes.ToString());
        break;
      case 8:
        msg.bytes_read = f.varint;
        break;
      default:
        break;
    }
  }
  PCR_RETURN_IF_ERROR(reader.status());
  return msg;
}

std::string ShmSegmentMsg::Encode() const {
  wire::WireWriter w;
  w.PutUint64(1, stream_id);
  w.PutUint64(2, segment_bytes);
  w.PutUint64(3, slots);
  w.PutUint64(4, slot_bytes);
  return w.Release();
}

Result<ShmSegmentMsg> ShmSegmentMsg::Decode(Slice payload) {
  ShmSegmentMsg msg;
  PCR_SERVE_DECODE_LOOP(
      payload, f,
      case 1 : msg.stream_id = f.varint;
      break; case 2 : msg.segment_bytes = f.varint;
      break; case 3 : msg.slots = static_cast<uint32_t>(f.varint);
      break; case 4 : msg.slot_bytes = f.varint; break;);
  return msg;
}

std::string ShmAckRequest::Encode() const {
  wire::WireWriter w;
  w.PutUint64(1, stream_id);
  w.PutBool(2, accepted);
  return w.Release();
}

Result<ShmAckRequest> ShmAckRequest::Decode(Slice payload) {
  ShmAckRequest msg;
  PCR_SERVE_DECODE_LOOP(payload, f, case 1 : msg.stream_id = f.varint;
                        break; case 2 : msg.accepted = f.varint != 0;
                        break;);
  return msg;
}

std::string BatchDescriptorReply::Encode() const {
  wire::WireWriter w;
  w.PutUint64(1, stream_id);
  w.PutSint64(2, record_index);
  w.PutUint64(3, scan_group);
  std::vector<uint64_t> packed_labels;
  packed_labels.reserve(labels.size());
  for (const int64_t label : labels) {
    packed_labels.push_back(wire::ZigZagEncode(label));
  }
  w.PutPackedUint64(4, packed_labels);
  w.PutUint64(5, bytes_read);
  w.PutUint64(6, slot);
  w.PutUint64(7, generation);
  w.PutUint64(8, payload_bytes);
  for (const WireImageDesc& img : images) {
    wire::WireWriter iw;
    iw.PutUint64(1, img.width);
    iw.PutUint64(2, img.height);
    iw.PutUint64(3, img.channels);
    iw.PutUint64(4, img.offset);
    iw.PutUint64(5, img.length);
    w.PutMessage(9, iw);
  }
  return w.Release();
}

Result<BatchDescriptorReply> BatchDescriptorReply::Decode(Slice payload) {
  BatchDescriptorReply msg;
  wire::WireReader reader(payload);
  wire::WireField f;
  while (reader.Next(&f)) {
    switch (f.field) {
      case 1:
        msg.stream_id = f.varint;
        break;
      case 2:
        msg.record_index = static_cast<int32_t>(f.AsSint64());
        break;
      case 3:
        msg.scan_group = static_cast<uint32_t>(f.varint);
        break;
      case 4: {
        PCR_ASSIGN_OR_RETURN(std::vector<uint64_t> packed,
                             wire::WireReader::DecodePackedUint64(f.bytes));
        msg.labels.reserve(packed.size());
        for (const uint64_t v : packed) {
          msg.labels.push_back(wire::ZigZagDecode(v));
        }
        break;
      }
      case 5:
        msg.bytes_read = f.varint;
        break;
      case 6:
        msg.slot = static_cast<uint32_t>(f.varint);
        break;
      case 7:
        msg.generation = f.varint;
        break;
      case 8:
        msg.payload_bytes = f.varint;
        break;
      case 9: {
        WireImageDesc img;
        wire::WireReader ir(f.bytes);
        wire::WireField imf;
        while (ir.Next(&imf)) {
          switch (imf.field) {
            case 1: img.width = static_cast<uint32_t>(imf.varint); break;
            case 2: img.height = static_cast<uint32_t>(imf.varint); break;
            case 3: img.channels = static_cast<uint32_t>(imf.varint); break;
            case 4: img.offset = imf.varint; break;
            case 5: img.length = imf.varint; break;
            default: break;
          }
        }
        PCR_RETURN_IF_ERROR(ir.status());
        const uint64_t want = static_cast<uint64_t>(img.width) * img.height *
                              img.channels;
        if (img.length != want) {
          return Status::Corruption("serve descriptor: image length " +
                                    std::to_string(img.length) +
                                    " != w*h*c " + std::to_string(want));
        }
        msg.images.push_back(img);
        break;
      }
      default:
        break;
    }
  }
  PCR_RETURN_IF_ERROR(reader.status());
  return msg;
}

std::string ReleaseSlotRequest::Encode() const {
  wire::WireWriter w;
  w.PutUint64(1, stream_id);
  w.PutUint64(2, slot);
  w.PutUint64(3, generation);
  return w.Release();
}

Result<ReleaseSlotRequest> ReleaseSlotRequest::Decode(Slice payload) {
  ReleaseSlotRequest msg;
  PCR_SERVE_DECODE_LOOP(payload, f, case 1 : msg.stream_id = f.varint;
                        break; case 2
                        : msg.slot = static_cast<uint32_t>(f.varint);
                        break; case 3 : msg.generation = f.varint; break;);
  return msg;
}

Status ValidateBatchDescriptor(const BatchDescriptorReply& desc,
                               uint32_t num_slots, uint64_t slot_bytes) {
  if (desc.slot >= num_slots) {
    return Status::Corruption("serve descriptor: slot " +
                              std::to_string(desc.slot) + " >= ring size " +
                              std::to_string(num_slots));
  }
  if (desc.generation == 0) {
    return Status::Corruption("serve descriptor: zero generation cookie");
  }
  uint64_t total = 0;
  for (const WireImageDesc& img : desc.images) {
    // offset + length must stay inside the slot without overflowing.
    if (img.length > slot_bytes || img.offset > slot_bytes - img.length) {
      return Status::Corruption(
          "serve descriptor: image [" + std::to_string(img.offset) + ", +" +
          std::to_string(img.length) + ") escapes the " +
          std::to_string(slot_bytes) + "-byte slot");
    }
    total += img.length;
  }
  if (total != desc.payload_bytes) {
    return Status::Corruption("serve descriptor: image bytes " +
                              std::to_string(total) + " != payload_bytes " +
                              std::to_string(desc.payload_bytes));
  }
  return Status::OK();
}

std::string StatsRequest::Encode() const {
  wire::WireWriter w;
  w.PutUint64(1, stream_id);
  return w.Release();
}

Result<StatsRequest> StatsRequest::Decode(Slice payload) {
  StatsRequest msg;
  PCR_SERVE_DECODE_LOOP(payload, f, case 1 : msg.stream_id = f.varint;
                        break;);
  return msg;
}

namespace {

std::string EncodeStreamStats(const StreamStats& s) {
  wire::WireWriter w;
  w.PutUint64(1, s.stream_id);
  w.PutString(2, s.client_name);
  w.PutInt64(3, s.served_batches);
  w.PutInt64(4, s.served_images);
  w.PutUint64(5, s.served_bytes);
  w.PutDouble(6, s.queue_wait_p50_sec);
  w.PutDouble(7, s.queue_wait_p99_sec);
  w.PutDouble(8, s.batch_p50_sec);
  w.PutDouble(9, s.batch_p99_sec);
  w.PutInt64(10, s.cache_hits);
  w.PutInt64(11, s.cache_misses);
  w.PutInt64(12, s.shm_batches);
  w.PutInt64(13, s.shm_slot_waits);
  w.PutUint64(14, s.bytes_copied);
  w.PutInt64(15, s.zero_copy_hits);
  w.PutUint64(16, s.zero_copy_bytes);
  return w.Release();
}

Result<StreamStats> DecodeStreamStats(Slice payload) {
  StreamStats s;
  PCR_SERVE_DECODE_LOOP(
      payload, f,
      case 1 : s.stream_id = f.varint;
      break; case 2 : s.client_name = f.bytes.ToString();
      break; case 3 : s.served_batches = static_cast<int64_t>(f.varint);
      break; case 4 : s.served_images = static_cast<int64_t>(f.varint);
      break; case 5 : s.served_bytes = f.varint;
      break; case 6 : s.queue_wait_p50_sec = f.AsDouble();
      break; case 7 : s.queue_wait_p99_sec = f.AsDouble();
      break; case 8 : s.batch_p50_sec = f.AsDouble();
      break; case 9 : s.batch_p99_sec = f.AsDouble();
      break; case 10 : s.cache_hits = static_cast<int64_t>(f.varint);
      break; case 11 : s.cache_misses = static_cast<int64_t>(f.varint);
      break; case 12 : s.shm_batches = static_cast<int64_t>(f.varint);
      break; case 13 : s.shm_slot_waits = static_cast<int64_t>(f.varint);
      break; case 14 : s.bytes_copied = f.varint;
      break; case 15 : s.zero_copy_hits = static_cast<int64_t>(f.varint);
      break; case 16 : s.zero_copy_bytes = f.varint; break;);
  return s;
}

}  // namespace

std::string StatsReply::Encode() const {
  wire::WireWriter w;
  w.PutUint64(1, active_streams);
  w.PutUint64(2, max_streams);
  w.PutUint64(3, cache_bytes_in_use);
  w.PutUint64(4, cache_capacity_bytes);
  w.PutInt64(5, cache_hits);
  w.PutInt64(6, cache_misses);
  for (const StreamStats& s : streams) {
    w.PutBytes(7, Slice(EncodeStreamStats(s)));
  }
  return w.Release();
}

Result<StatsReply> StatsReply::Decode(Slice payload) {
  StatsReply msg;
  wire::WireReader reader(payload);
  wire::WireField f;
  while (reader.Next(&f)) {
    switch (f.field) {
      case 1: msg.active_streams = static_cast<uint32_t>(f.varint); break;
      case 2: msg.max_streams = static_cast<uint32_t>(f.varint); break;
      case 3: msg.cache_bytes_in_use = f.varint; break;
      case 4: msg.cache_capacity_bytes = f.varint; break;
      case 5: msg.cache_hits = static_cast<int64_t>(f.varint); break;
      case 6: msg.cache_misses = static_cast<int64_t>(f.varint); break;
      case 7: {
        PCR_ASSIGN_OR_RETURN(StreamStats s, DecodeStreamStats(f.bytes));
        msg.streams.push_back(std::move(s));
        break;
      }
      default: break;
    }
  }
  PCR_RETURN_IF_ERROR(reader.status());
  return msg;
}

std::string CloseStreamRequest::Encode() const {
  wire::WireWriter w;
  w.PutUint64(1, stream_id);
  return w.Release();
}

Result<CloseStreamRequest> CloseStreamRequest::Decode(Slice payload) {
  CloseStreamRequest msg;
  PCR_SERVE_DECODE_LOOP(payload, f, case 1 : msg.stream_id = f.varint;
                        break;);
  return msg;
}

std::string StreamClosedReply::Encode() const {
  wire::WireWriter w;
  w.PutUint64(1, stream_id);
  return w.Release();
}

Result<StreamClosedReply> StreamClosedReply::Decode(Slice payload) {
  StreamClosedReply msg;
  PCR_SERVE_DECODE_LOOP(payload, f, case 1 : msg.stream_id = f.varint;
                        break;);
  return msg;
}

std::string ErrorReply::Encode() const {
  wire::WireWriter w;
  w.PutUint64(1, code);
  w.PutString(2, message);
  w.PutUint64(3, stream_id);
  return w.Release();
}

Result<ErrorReply> ErrorReply::Decode(Slice payload) {
  ErrorReply msg;
  PCR_SERVE_DECODE_LOOP(
      payload, f,
      case 1 : msg.code = static_cast<uint32_t>(f.varint);
      break; case 2 : msg.message = f.bytes.ToString();
      break; case 3 : msg.stream_id = f.varint; break;);
  return msg;
}

Status ErrorReply::ToStatus() const {
  const StatusCode status_code =
      code <= static_cast<uint32_t>(StatusCode::kUnknown)
          ? static_cast<StatusCode>(code)
          : StatusCode::kUnknown;
  if (status_code == StatusCode::kOk) {
    return Status::Unknown("daemon error reply with OK code: " + message);
  }
  return Status(status_code, message);
}

ErrorReply ErrorReply::FromStatus(const Status& status, uint64_t stream_id) {
  ErrorReply reply;
  reply.code = static_cast<uint32_t>(status.code());
  reply.message = status.message();
  reply.stream_id = stream_id;
  return reply;
}

#undef PCR_SERVE_DECODE_LOOP

}  // namespace pcr::serve
