#include "serve/daemon.h"

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "kv/kv_store.h"
#include "loader/scan_policy.h"
#include "util/crc32c.h"
#include "util/logging.h"
#include "util/shm_ring.h"

namespace pcr::serve {
namespace {

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Canonicalizes a dataset directory so two spellings of one path share a
/// registry entry (and thus a cache namespace). Falls back to the raw
/// spelling when the path does not resolve.
std::string CanonicalPath(const std::string& path) {
  char buf[PATH_MAX];
  if (::realpath(path.c_str(), buf) != nullptr) return std::string(buf);
  return path;
}

uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

// --- Connection / Stream / DatasetEntry ------------------------------------

struct PcrDaemon::Connection {
  int fd = -1;
  std::string peer_name;  // From Hello.
  bool said_hello = false;
  bool shm_capable = false;  // Hello capability bit.

  std::mutex write_mu;
  std::thread reader;
  std::atomic<bool> done{false};

  std::mutex streams_mu;
  std::vector<uint64_t> stream_ids;
};

struct PcrDaemon::DatasetEntry {
  std::string canonical_dir;
  std::unique_ptr<PcrDataset> dataset;
  uint64_t cache_id = 0;
  int refs = 0;
};

struct PcrDaemon::Stream {
  uint64_t id = 0;
  std::string client_name;
  std::shared_ptr<Connection> conn;
  std::shared_ptr<DatasetEntry> dataset;
  std::unique_ptr<LoaderPipeline> pipeline;
  uint32_t max_inflight = 1;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<double> pending;  // NextBatch receipt times (steady seconds).
  bool closing = false;
  bool end_of_stream = false;

  StageStats stats;  // Serve stage: items = served batches.
  std::atomic<int64_t> served_images{0};

  // Shm data plane. Like the pipeline, segment and ring are assigned before
  // the stream is published and never reset afterwards, so the serving
  // thread and stats readers touch them without stream->mu. Descriptors
  // flow only once shm_active is set (by the client's accepted ShmAck);
  // until then — and forever on the socket plane — both stay unused.
  std::unique_ptr<ShmSegment> shm;
  std::unique_ptr<SlotRing> ring;
  std::atomic<bool> shm_active{false};

  std::thread server;
};

// --- DrrScheduler -----------------------------------------------------------

void PcrDaemon::DrrScheduler::Register(uint64_t stream_id) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[stream_id];  // Deficit starts at 0; first round tops it up.
}

void PcrDaemon::DrrScheduler::Unregister(uint64_t stream_id) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(stream_id);
  cv_.notify_all();  // Wake an Acquire parked on the erased stream.
}

uint64_t PcrDaemon::DrrScheduler::PickNextLocked() {
  uint64_t best = 0;
  int64_t best_deficit = 0;
  bool any = false;
  for (auto& [id, entry] : entries_) {
    if (!entry.waiting) continue;
    if (!any || entry.deficit > best_deficit) {
      best = id;
      best_deficit = entry.deficit;
      any = true;
    }
  }
  if (!any) return 0;
  if (best_deficit <= 0) {
    // Every waiting stream is overdrawn: a new round credits one quantum
    // each (classic DRR, adapted to reply sizes unknown until served).
    for (auto& [id, entry] : entries_) {
      if (entry.waiting) entry.deficit += static_cast<int64_t>(quantum_);
    }
  }
  return best;
}

bool PcrDaemon::DrrScheduler::Acquire(uint64_t stream_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.find(stream_id);
  if (it == entries_.end()) return false;
  it->second.waiting = true;
  while (true) {
    if (shutdown_ || entries_.count(stream_id) == 0) return false;
    if (tokens_ > 0 && PickNextLocked() == stream_id) {
      --tokens_;
      entries_[stream_id].waiting = false;
      return true;
    }
    cv_.wait(lock);
  }
}

void PcrDaemon::DrrScheduler::Release(uint64_t stream_id, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  ++tokens_;
  auto it = entries_.find(stream_id);
  if (it != entries_.end()) it->second.deficit -= static_cast<int64_t>(bytes);
  cv_.notify_all();
}

void PcrDaemon::DrrScheduler::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  cv_.notify_all();
}

// --- Daemon lifecycle -------------------------------------------------------

PcrDaemon::PcrDaemon(Env* env, DaemonOptions options)
    : env_(env),
      options_(std::move(options)),
      scheduler_(std::max(1, options_.serve_tokens),
                 std::max<uint64_t>(1, options_.drr_quantum_bytes)) {
  DecodeCacheOptions cache_options;
  cache_options.capacity_bytes = std::max<uint64_t>(1, options_.decode_cache_bytes);
  decode_cache_ = std::make_shared<DecodeCache>(cache_options);
  prefix_cache_ = std::make_shared<PrefixCache>(
      PrefixCacheOptions{std::max<uint64_t>(1, options_.prefix_cache_bytes)});
}

Result<std::unique_ptr<PcrDaemon>> PcrDaemon::Start(Env* env,
                                                    DaemonOptions options) {
  if (options.socket_path.empty()) {
    return Status::InvalidArgument("serve: socket_path is required");
  }
  std::unique_ptr<PcrDaemon> daemon(new PcrDaemon(env, std::move(options)));
  PCR_RETURN_IF_ERROR(daemon->Listen());
  daemon->accept_thread_ = std::thread([d = daemon.get()] { d->AcceptLoop(); });
  return daemon;
}

Status PcrDaemon::Listen() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("serve: socket path too long: " +
                                   options_.socket_path);
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  // A file at the socket path may be a LIVE daemon's socket or a stale
  // leftover from a crash. Probe-connect before unlinking: blindly clearing
  // the path would silently steal a running daemon's clients (its listener
  // keeps serving existing connections, but every new connect lands here).
  struct stat st{};
  if (::lstat(options_.socket_path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      return Status::AlreadyExists("serve: " + options_.socket_path +
                                   " exists and is not a socket");
    }
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe < 0) {
      return Status::IOError("serve: socket(): " +
                             std::string(std::strerror(errno)));
    }
    const int connected =
        ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    ::close(probe);
    if (connected == 0) {
      return Status::AlreadyExists("serve: a live daemon is already "
                                   "listening on " +
                                   options_.socket_path);
    }
    // ECONNREFUSED (or any connect failure on an existing socket file):
    // nobody is accepting — a stale socket from a crash. Safe to replace.
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("serve: socket(): " +
                           std::string(std::strerror(errno)));
  }
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("serve: bind(" + options_.socket_path +
                           "): " + std::strerror(err));
  }
  bound_ = true;  // From here on the socket file is ours to unlink.
  if (::listen(listen_fd_, 64) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("serve: listen(): " +
                           std::string(std::strerror(err)));
  }
  return Status::OK();
}

PcrDaemon::~PcrDaemon() { Stop(); }

void PcrDaemon::Stop() {
  if (stopping_.exchange(true)) {
    // Second caller (e.g. ~PcrDaemon after an explicit Stop) — already done.
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // Unblock everything serve-side first: shut the fairness scheduler down
  // (wakes Acquire), sever every connection (unblocks serving threads
  // parked in send() against a stalled client and pops the readers out of
  // recv()), then tear the streams down — pipeline Stop() unblocks any
  // thread still inside Next(), so the joins below are bounded.
  scheduler_.Shutdown();
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (const auto& conn : conns) {
    ::shutdown(conn->fd, SHUT_RDWR);
  }
  std::vector<uint64_t> ids;
  {
    std::lock_guard<std::mutex> lock(streams_mu_);
    ids.reserve(streams_.size());
    for (const auto& [id, stream] : streams_) ids.push_back(id);
  }
  for (uint64_t id : ids) TeardownStream(id);
  for (const auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
    ::close(conn->fd);  // Readers leave the fd open; the remover closes it.
  }
  // Only remove the socket file if this daemon bound it — a daemon that
  // LOST the Listen() race must not unlink the winner's live socket (or
  // whatever non-socket file blocked the path).
  if (bound_) ::unlink(options_.socket_path.c_str());
}

int PcrDaemon::active_streams() const {
  std::lock_guard<std::mutex> lock(streams_mu_);
  return static_cast<int>(streams_.size());
}

// --- Accept / read / dispatch ----------------------------------------------

void PcrDaemon::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // Listener shut down (or unrecoverable).
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      // Reap connections whose readers already finished (their streams are
      // torn down by the reader on its way out).
      for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->done.load(std::memory_order_acquire)) {
          if ((*it)->reader.joinable()) (*it)->reader.join();
          ::close((*it)->fd);
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
      conns_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
  }
}

void PcrDaemon::ReaderLoop(std::shared_ptr<Connection> conn) {
  FrameParser parser;
  std::vector<char> buf(256 << 10);
  bool healthy = true;
  while (healthy) {
    const ssize_t n = ::recv(conn->fd, buf.data(), buf.size(), 0);
    if (n <= 0) break;  // Peer closed / connection severed.
    parser.Feed(Slice(buf.data(), static_cast<size_t>(n)));
    Frame frame;
    while (true) {
      const FrameParser::Outcome outcome = parser.Next(&frame);
      if (outcome == FrameParser::Outcome::kNeedMore) break;
      if (outcome == FrameParser::Outcome::kError) {
        // Unrecoverable stream (oversized/garbage header): tell the peer
        // why, then hang up.
        SendError(conn, parser.status(), 0);
        healthy = false;
        break;
      }
      HandleFrame(conn, frame);
    }
  }
  TeardownConnection(conn);
  // Sever the peer — when the reader hangs up first (garbage frames), the
  // client must still see EOF promptly — but do NOT close: closing would
  // free the descriptor number for reuse while this entry lingers in
  // conns_ (done connections are only reaped on the next accept), and
  // Stop()'s shutdown() could then hit an unrelated fd. Whoever removes
  // the connection from conns_ — the accept loop's reap or Stop() —
  // closes it after joining this thread.
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->done.store(true, std::memory_order_release);
}

void PcrDaemon::HandleFrame(const std::shared_ptr<Connection>& conn,
                            const Frame& frame) {
  const Slice payload(frame.payload);
  switch (frame.type) {
    case MessageType::kHello:
      HandleHello(conn, payload);
      return;
    case MessageType::kOpenStream:
      HandleOpenStream(conn, payload);
      return;
    case MessageType::kNextBatch:
      HandleNextBatch(conn, payload);
      return;
    case MessageType::kShmAck:
      HandleShmAck(conn, payload);
      return;
    case MessageType::kReleaseSlot:
      HandleReleaseSlot(conn, payload);
      return;
    case MessageType::kStats:
      HandleStats(conn, payload);
      return;
    case MessageType::kCloseStream:
      HandleCloseStream(conn, payload);
      return;
    default:
      SendError(conn,
                Status::InvalidArgument(
                    "serve: unexpected client message type " +
                    std::to_string(static_cast<int>(frame.type))),
                0);
      return;
  }
}

void PcrDaemon::HandleHello(const std::shared_ptr<Connection>& conn,
                            Slice payload) {
  auto hello = HelloRequest::Decode(payload);
  if (!hello.ok()) {
    SendError(conn, hello.status(), 0);
    return;
  }
  if (hello->protocol_version != kProtocolVersion) {
    SendError(conn,
              Status::InvalidArgument(
                  "serve: protocol version mismatch: client speaks v" +
                  std::to_string(hello->protocol_version) + ", server v" +
                  std::to_string(kProtocolVersion)),
              0);
    return;
  }
  conn->peer_name = hello->client_name;
  conn->said_hello = true;
  conn->shm_capable = hello->shm_capable;
  HelloReply reply;
  reply.server_name = options_.server_name;
  reply.max_streams = static_cast<uint32_t>(options_.max_streams);
  reply.max_inflight_per_stream =
      static_cast<uint32_t>(options_.max_inflight_per_stream);
  reply.shm_supported = options_.shm_plane;
  (void)WriteFrame(*conn, MessageType::kHelloReply, Slice(reply.Encode()));
}

void PcrDaemon::HandleOpenStream(const std::shared_ptr<Connection>& conn,
                                 Slice payload) {
  auto req = OpenStreamRequest::Decode(payload);
  if (!req.ok()) {
    SendError(conn, req.status(), 0);
    return;
  }
  if (!conn->said_hello) {
    SendError(conn,
              Status::FailedPrecondition("serve: OpenStream before Hello"), 0);
    return;
  }
  if (req->max_epochs == 0) {
    SendError(conn,
              Status::InvalidArgument(
                  "serve: max_epochs must be >= 1 (unbounded streams would "
                  "pin an admission slot forever; re-open instead)"),
              0);
    return;
  }
  if (stopping_.load(std::memory_order_acquire)) {
    SendError(conn, Status::Aborted("serve: daemon stopping"), 0);
    return;
  }

  auto dataset = AcquireDataset(req->dataset_dir);
  if (!dataset.ok()) {
    SendError(conn, dataset.status(), 0);
    return;
  }

  const int num_groups = (*dataset)->dataset->num_scan_groups();
  int scan_group = static_cast<int>(req->scan_group);
  if (scan_group <= 0 || scan_group > num_groups) scan_group = num_groups;
  const uint32_t max_inflight = std::max<uint32_t>(
      1, std::min<uint32_t>(
             req->max_inflight,
             static_cast<uint32_t>(options_.max_inflight_per_stream)));

  LoaderPipelineOptions pipe;
  pipe.io_threads = options_.io_threads;
  pipe.io_inflight = options_.io_inflight;
  pipe.decode_threads = options_.decode_threads;
  pipe.io_backend = options_.io_backend;
  pipe.decode = req->decode;
  pipe.max_epochs = static_cast<int>(req->max_epochs);
  pipe.shuffle = req->shuffle;
  pipe.seed = req->seed;
  pipe.scan_policy = std::make_shared<FixedScanPolicy>(scan_group);
  pipe.decode_cache = decode_cache_;
  pipe.cache_dataset_id = (*dataset)->cache_id;
  pipe.prefix_cache = prefix_cache_;
  pipe.prefix_dataset_id = (*dataset)->cache_id;

  auto stream = std::make_shared<Stream>();
  stream->client_name = conn->peer_name;
  stream->conn = conn;
  stream->dataset = *dataset;
  stream->max_inflight = max_inflight;
  bool admitted = false;
  {
    // Reserve the admission slot and id, but do NOT publish the stream yet:
    // once it is visible in streams_, Stop()/CloseStream may tear it down
    // concurrently, so the pipeline, scheduler entry, and serving thread
    // must all exist first. admitted_streams_ counts reserved slots
    // (including streams still being initialized) so concurrent opens
    // cannot over-admit in the window before publication.
    std::lock_guard<std::mutex> lock(streams_mu_);
    if (admitted_streams_ < options_.max_streams) {
      stream->id = next_stream_id_++;
      ++admitted_streams_;
      admitted = true;
    }
  }
  if (!admitted) {
    // Admission control: the node is at capacity. Drop the dataset ref; the
    // client can retry after another stream closes.
    ReleaseDataset(*dataset);
    SendError(conn,
              Status::ResourceExhausted(
                  "serve: stream limit reached (" +
                  std::to_string(options_.max_streams) + ")"),
              0);
    return;
  }
  stream->pipeline = std::make_unique<LoaderPipeline>(
      (*dataset)->dataset.get(), pipe);

  // Shm data plane: decoded streams only (the compressed plane's JPEG bytes
  // are small and variable — the socket serves them fine), and only when
  // both the daemon offers it and the connection's Hello claimed the
  // capability. Segment creation failure (no memfd, /dev/shm exhausted) is
  // never a stream failure — the stream just stays on the socket plane.
  const bool want_shm = options_.shm_plane && req->shm_plane && req->decode &&
                        conn->shm_capable;
  if (want_shm) {
    const uint32_t slots = options_.shm_slots_per_stream > 0
                               ? static_cast<uint32_t>(
                                     options_.shm_slots_per_stream)
                               : max_inflight + 2;
    const uint64_t slot_bytes =
        std::max<uint64_t>(4096, options_.shm_slot_bytes);
    const uint64_t segment_bytes = static_cast<uint64_t>(slots) * slot_bytes;
    const uint64_t create_bytes = options_.shm_undersize_segment_for_test
                                      ? segment_bytes / 2
                                      : segment_bytes;
    auto segment = ShmSegment::Create(
        "pcrd-stream-" + std::to_string(stream->id), create_bytes);
    if (segment.ok()) {
      stream->shm = std::make_unique<ShmSegment>(std::move(segment).MoveValue());
      stream->ring = std::make_unique<SlotRing>(slots, slot_bytes);
    } else {
      PCR_LOG(Warning) << "serve: stream " << stream->id
                       << ": shm segment creation failed ("
                       << segment.status().ToString()
                       << "); falling back to the socket plane";
    }
  }

  scheduler_.Register(stream->id);
  {
    std::lock_guard<std::mutex> lock(conn->streams_mu);
    conn->stream_ids.push_back(stream->id);
  }
  stream->server = std::thread([this, stream] { ServeLoop(stream); });

  bool published = false;
  {
    std::lock_guard<std::mutex> lock(streams_mu_);
    if (!stopping_.load(std::memory_order_acquire)) {
      streams_[stream->id] = stream;
      published = true;
    }
  }
  if (!published) {
    // Stop() set stopping_ before snapshotting streams_, so it will never
    // see this stream — unwind it inline instead of leaking a joinable
    // serving thread and a live pipeline.
    {
      std::lock_guard<std::mutex> lock(stream->mu);
      stream->closing = true;
    }
    stream->cv.notify_all();
    scheduler_.Unregister(stream->id);
    if (stream->ring) stream->ring->Close();
    stream->pipeline->Stop();
    stream->server.join();
    {
      std::lock_guard<std::mutex> lock(streams_mu_);
      --admitted_streams_;
    }
    ReleaseDataset(*dataset);
    SendError(conn, Status::Aborted("serve: daemon stopping"), 0);
    return;
  }

  StreamOpenedReply reply;
  reply.stream_id = stream->id;
  reply.num_records =
      static_cast<uint32_t>((*dataset)->dataset->num_records());
  reply.num_images = static_cast<uint32_t>((*dataset)->dataset->num_images());
  reply.num_scan_groups = static_cast<uint32_t>(num_groups);
  reply.scan_group = static_cast<uint32_t>(scan_group);
  reply.max_inflight = max_inflight;
  reply.cache_dataset_id = (*dataset)->cache_id;
  if (stream->ring) {
    reply.shm_slots = stream->ring->num_slots();
    reply.shm_slot_bytes = stream->ring->slot_bytes();
  }
  (void)WriteFrame(*conn, MessageType::kStreamOpened, Slice(reply.Encode()));

  if (stream->ring) {
    // Pass the segment fd. The client answers with ShmAck once it mapped
    // (or failed to map) the segment; descriptors flow only after an
    // accepted ack. If the fd pass itself fails, withdraw the plane with a
    // plain slots=0 ShmSegment frame so the client is not left waiting —
    // the stream continues on the socket plane either way.
    ShmSegmentMsg msg;
    msg.stream_id = stream->id;
    msg.segment_bytes =
        static_cast<uint64_t>(stream->ring->num_slots()) *
        stream->ring->slot_bytes();
    msg.slots = stream->ring->num_slots();
    msg.slot_bytes = stream->ring->slot_bytes();
    Status passed = options_.shm_fail_fd_pass_for_test
                        ? Status::IOError("injected fd-pass failure")
                        : WriteFrameWithFd(*conn, MessageType::kShmSegment,
                                           Slice(msg.Encode()),
                                           stream->shm->fd());
    if (!passed.ok()) {
      PCR_LOG(Warning) << "serve: stream " << stream->id
                       << ": shm fd pass failed (" << passed.ToString()
                       << "); stream stays on the socket plane";
      ShmSegmentMsg withdraw;
      withdraw.stream_id = stream->id;
      withdraw.slots = 0;
      (void)WriteFrame(*conn, MessageType::kShmSegment,
                       Slice(withdraw.Encode()));
    }
  }
}

void PcrDaemon::HandleNextBatch(const std::shared_ptr<Connection>& conn,
                                Slice payload) {
  auto req = NextBatchRequest::Decode(payload);
  if (!req.ok()) {
    SendError(conn, req.status(), 0);
    return;
  }
  std::shared_ptr<Stream> stream;
  {
    std::lock_guard<std::mutex> lock(streams_mu_);
    auto it = streams_.find(req->stream_id);
    if (it != streams_.end()) stream = it->second;
  }
  if (!stream || stream->conn.get() != conn.get()) {
    SendError(conn,
              Status::NotFound("serve: no such stream " +
                               std::to_string(req->stream_id)),
              req->stream_id);
    return;
  }
  bool over_cap = false;
  size_t in_flight = 0;
  {
    std::lock_guard<std::mutex> lock(stream->mu);
    in_flight = stream->pending.size();
    if (in_flight >= stream->max_inflight) {
      over_cap = true;  // In-flight cap: the client overran its budget.
    } else {
      stream->pending.push_back(NowSec());
    }
  }
  if (over_cap) {
    SendError(conn,
              Status::ResourceExhausted(
                  "serve: stream " + std::to_string(stream->id) +
                  " already has " + std::to_string(in_flight) +
                  " requests in flight (cap " +
                  std::to_string(stream->max_inflight) + ")"),
              stream->id);
    return;
  }
  stream->cv.notify_one();
}

void PcrDaemon::HandleShmAck(const std::shared_ptr<Connection>& conn,
                             Slice payload) {
  auto ack = ShmAckRequest::Decode(payload);
  if (!ack.ok()) {
    SendError(conn, ack.status(), 0);
    return;
  }
  std::shared_ptr<Stream> stream;
  {
    std::lock_guard<std::mutex> lock(streams_mu_);
    auto it = streams_.find(ack->stream_id);
    if (it != streams_.end()) stream = it->second;
  }
  if (!stream || stream->conn.get() != conn.get() || !stream->ring) {
    return;  // Unknown/foreign stream or no plane offered: nothing to ack.
  }
  if (ack->accepted) {
    stream->shm_active.store(true, std::memory_order_release);
  }
  // A rejected ack (client could not receive the fd or map the segment)
  // simply leaves shm_active unset: the stream serves over the socket for
  // its whole life, and the segment dies with the Stream.
}

void PcrDaemon::HandleReleaseSlot(const std::shared_ptr<Connection>& conn,
                                  Slice payload) {
  auto req = ReleaseSlotRequest::Decode(payload);
  if (!req.ok()) {
    SendError(conn, req.status(), 0);
    return;
  }
  std::shared_ptr<Stream> stream;
  {
    std::lock_guard<std::mutex> lock(streams_mu_);
    auto it = streams_.find(req->stream_id);
    if (it != streams_.end()) stream = it->second;
  }
  if (!stream || stream->conn.get() != conn.get() || !stream->ring) return;
  // Out-of-range slots and stale/forged generation cookies are dropped by
  // the ring itself — a hostile credit cannot free someone else's tenancy.
  (void)stream->ring->Release(req->slot, req->generation);
}

void PcrDaemon::HandleStats(const std::shared_ptr<Connection>& conn,
                            Slice payload) {
  auto req = StatsRequest::Decode(payload);
  if (!req.ok()) {
    SendError(conn, req.status(), 0);
    return;
  }
  const StatsReply reply = BuildStats(req->stream_id);
  (void)WriteFrame(*conn, MessageType::kStatsReply, Slice(reply.Encode()));
}

void PcrDaemon::HandleCloseStream(const std::shared_ptr<Connection>& conn,
                                  Slice payload) {
  auto req = CloseStreamRequest::Decode(payload);
  if (!req.ok()) {
    SendError(conn, req.status(), 0);
    return;
  }
  bool known = false;
  {
    std::lock_guard<std::mutex> lock(streams_mu_);
    auto it = streams_.find(req->stream_id);
    known = it != streams_.end() && it->second->conn.get() == conn.get();
  }
  if (!known) {
    SendError(conn,
              Status::NotFound("serve: no such stream " +
                               std::to_string(req->stream_id)),
              req->stream_id);
    return;
  }
  TeardownStream(req->stream_id);
  StreamClosedReply reply;
  reply.stream_id = req->stream_id;
  (void)WriteFrame(*conn, MessageType::kStreamClosed, Slice(reply.Encode()));
}

// --- Serving ----------------------------------------------------------------

void PcrDaemon::ServeLoop(const std::shared_ptr<Stream>& stream) {
  while (true) {
    double receipt = 0;
    {
      std::unique_lock<std::mutex> lock(stream->mu);
      stream->cv.wait(lock, [&] {
        return stream->closing || !stream->pending.empty();
      });
      if (stream->closing) return;
      receipt = stream->pending.front();
      stream->pending.pop_front();
    }
    if (!scheduler_.Acquire(stream->id)) return;
    stream->stats.AddQueueWait(NowSec() - receipt);

    BatchReply reply;             // Socket plane and end-of-stream.
    reply.stream_id = stream->id;
    BatchDescriptorReply desc;    // Shm plane.
    desc.stream_id = stream->id;
    bool use_shm = false;
    bool fatal = false;
    if (stream->end_of_stream) {
      reply.end_of_stream = true;
    } else {
      Result<SharedLoadedBatch> next = stream->pipeline->NextShared();
      if (next.ok()) {
        const LoadedBatch& batch = *next->batch;
        uint64_t pixel_bytes = 0;
        // Slot layout: each image starts cache-line aligned (the placement
        // copy's non-temporal stores want aligned destinations), so the
        // fit check is against the padded end, not the raw byte sum.
        uint64_t placed_end = 0;
        for (const Image& img : batch.images) {
          pixel_bytes += img.size_bytes();
          placed_end = (placed_end + 63) & ~uint64_t{63};
          placed_end += img.size_bytes();
        }

        // The shm plane carries decoded pixels that fit a slot; an
        // oversized batch (or a compressed one) falls back to a socket
        // BatchReply for just this delivery.
        use_shm = stream->shm_active.load(std::memory_order_acquire) &&
                  !batch.images.empty() && batch.jpeg_spans.empty() &&
                  placed_end <= stream->ring->slot_bytes();
        std::optional<std::pair<uint32_t, uint64_t>> slot;
        if (use_shm) {
          slot = stream->ring->TryAcquire();
          if (!slot.has_value()) {
            // Backpressure: every slot is lent out, so the client must
            // return one before this batch can be placed. Give the delivery
            // token back while blocked — the wait is this stream's alone,
            // and other streams keep flowing — then re-arbitrate.
            stream->stats.AddShmSlotWait();
            scheduler_.Release(stream->id, 0);
            slot = stream->ring->Acquire();
            if (!slot.has_value() || !scheduler_.Acquire(stream->id)) {
              if (slot.has_value()) {
                stream->ring->Release(slot->first, slot->second);
              }
              return;  // Ring closed or scheduler shut down: teardown.
            }
          }
        }

        if (use_shm) {
          // One copy, into the registered slot; only placement metadata
          // crosses the socket.
          uint8_t* const base =
              stream->shm->data() + stream->ring->SlotOffset(slot->first);
          uint64_t off = 0;
          for (const Image& img : batch.images) {
            off = (off + 63) & ~uint64_t{63};
            PlacementCopy(base + off, img.data(), img.size_bytes());
            WireImageDesc d;
            d.width = static_cast<uint32_t>(img.width());
            d.height = static_cast<uint32_t>(img.height());
            d.channels = static_cast<uint32_t>(img.channels());
            d.offset = off;
            d.length = img.size_bytes();
            desc.images.push_back(d);
            off += img.size_bytes();
          }
          desc.record_index = batch.record_index;
          desc.scan_group = static_cast<uint32_t>(batch.scan_group);
          desc.labels = batch.labels;
          desc.bytes_read = next->bytes_read;
          desc.slot = slot->first;
          desc.generation = slot->second;
          desc.payload_bytes = pixel_bytes;
          stream->stats.AddBytesCopied(pixel_bytes);
        } else {
          reply.record_index = batch.record_index;
          reply.scan_group = static_cast<uint32_t>(batch.scan_group);
          reply.labels = batch.labels;
          reply.bytes_read = next->bytes_read;
          for (const Image& img : batch.images) {
            WireImage wire;
            wire.width = static_cast<uint32_t>(img.width());
            wire.height = static_cast<uint32_t>(img.height());
            wire.channels = static_cast<uint32_t>(img.channels());
            wire.pixels.assign(reinterpret_cast<const char*>(img.data()),
                               img.size_bytes());
            reply.images.push_back(std::move(wire));
          }
          uint64_t jpeg_bytes = 0;
          for (const ByteSpan& span : batch.jpeg_spans) {
            reply.jpegs.emplace_back(batch.jpeg_backing.data() + span.offset,
                                     span.length);
            jpeg_bytes += span.length;
          }
          // Socket serialization moves the payload twice: into the wire
          // structs above, and again into the encoded frame below.
          stream->stats.AddBytesCopied(2 * (pixel_bytes + jpeg_bytes));
        }
        stream->served_images.fetch_add(
            static_cast<int64_t>(batch.images.size() +
                                 batch.jpeg_spans.size()),
            std::memory_order_relaxed);
      } else if (next.status().IsOutOfRange()) {
        stream->end_of_stream = true;
        reply.end_of_stream = true;
      } else {
        SendError(stream->conn, next.status(), stream->id);
        fatal = true;
      }
    }

    uint64_t reply_bytes = 0;
    if (!fatal) {
      const std::string payload = use_shm ? desc.Encode() : reply.Encode();
      // The DRR charge and stage bytes count actual service: the frame plus
      // (on the shm plane) the pixels placed in the slot, so a descriptor
      // stream cannot out-compete socket streams on fairness accounting.
      reply_bytes = payload.size() + (use_shm ? desc.payload_bytes : 0);
      const Status framable = CheckFramePayloadSize(payload.size());
      if (!framable.ok()) {
        // The batch cannot be framed. Tell the client cleanly (the error
        // reply is tiny) instead of letting an oversized length prefix
        // corrupt the stream; the stream cannot make progress past this
        // batch, so it ends here. Nothing was delivered, so no stats.
        SendError(stream->conn,
                  Status::ResourceExhausted(
                      "serve: stream " + std::to_string(stream->id) +
                      ": batch too large to frame: " + framable.message()),
                  stream->id);
        fatal = true;
      } else {
        // Count the delivery before writing it: the client can observe the
        // frame and immediately query stats, so the counters must already
        // include the batch it is about to receive.
        stream->stats.AddItem(reply_bytes);
        if (use_shm) stream->stats.AddShmBatch();
        const Status write =
            WriteFrame(*stream->conn,
                       use_shm ? MessageType::kBatchDescriptor
                               : MessageType::kBatchReply,
                       Slice(payload));
        if (!write.ok()) fatal = true;  // Peer gone; reader tears us down.
        stream->stats.AddBatchLatency(NowSec() - receipt);
        {
          std::lock_guard<std::mutex> lock(stream->mu);
          stream->stats.SampleQueueDepth(stream->pending.size());
        }
      }
    }
    scheduler_.Release(stream->id, reply_bytes);
    if (fatal) return;
  }
}

// --- Framing helpers --------------------------------------------------------

Status PcrDaemon::WriteFrame(Connection& conn, MessageType type,
                             Slice payload) {
  // An oversized payload would wrap EncodeFrame's 32-bit length prefix and
  // the peer would kill the connection on Corruption with no hint who
  // produced it — fail here instead, before encoding.
  PCR_RETURN_IF_ERROR(CheckFramePayloadSize(payload.size()));
  const std::string frame = EncodeFrame(type, payload);
  std::lock_guard<std::mutex> lock(conn.write_mu);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(conn.fd, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("serve: send(): " +
                             std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status PcrDaemon::WriteFrameWithFd(Connection& conn, MessageType type,
                                   Slice payload, int fd) {
  PCR_RETURN_IF_ERROR(CheckFramePayloadSize(payload.size()));
  const std::string frame = EncodeFrame(type, payload);
  std::lock_guard<std::mutex> lock(conn.write_mu);
  // The SCM_RIGHTS cmsg rides on the frame's first byte(s); the receiver's
  // recvmsg harvests it no matter where in the frame the kernel attaches
  // it. Any remainder goes out as plain sends.
  struct iovec iov;
  iov.iov_base = const_cast<char*>(frame.data());
  iov.iov_len = frame.size();
  alignas(struct cmsghdr) char cbuf[CMSG_SPACE(sizeof(int))];
  std::memset(cbuf, 0, sizeof(cbuf));
  struct msghdr msg {};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = cbuf;
  msg.msg_controllen = sizeof(cbuf);
  struct cmsghdr* cmsg = CMSG_FIRSTHDR(&msg);
  cmsg->cmsg_level = SOL_SOCKET;
  cmsg->cmsg_type = SCM_RIGHTS;
  cmsg->cmsg_len = CMSG_LEN(sizeof(int));
  std::memcpy(CMSG_DATA(cmsg), &fd, sizeof(int));
  ssize_t n;
  do {
    n = ::sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    return Status::IOError("serve: sendmsg(SCM_RIGHTS): " +
                           std::string(std::strerror(errno)));
  }
  size_t sent = static_cast<size_t>(n);
  while (sent < frame.size()) {
    const ssize_t m = ::send(conn.fd, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (m < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("serve: send(): " +
                             std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(m);
  }
  return Status::OK();
}

void PcrDaemon::SendError(const std::shared_ptr<Connection>& conn,
                          const Status& status, uint64_t stream_id) {
  const ErrorReply reply = ErrorReply::FromStatus(status, stream_id);
  // Best-effort: the peer may already be gone.
  (void)WriteFrame(*conn, MessageType::kError, Slice(reply.Encode()));
}

// --- Dataset registry -------------------------------------------------------

Result<uint64_t> PcrDaemon::DeriveCacheDatasetId(
    Env* env, const std::string& dataset_dir) {
  const std::string canonical = CanonicalPath(dataset_dir);
  // (path hash, manifest fingerprint) -> one 64-bit namespace. The
  // fingerprint covers the manifest's LIVE (key, value) set in sorted
  // order, not the log's raw bytes: KvStore::Open compacts the log, so the
  // byte layout legitimately changes between the writer generation and the
  // first serving open, while the live entries identify the generation
  // exactly. Same dataset + same generation hash identically on every
  // open; a rewrite changes the entries and thus the id.
  PCR_ASSIGN_OR_RETURN(std::unique_ptr<KvStore> manifest,
                       KvStore::Open(env, canonical + "/metadata.kvlog"));
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : canonical) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  uint32_t crc = 0;
  uint64_t entries = 0;
  for (const auto& [key, value] : manifest->ScanPrefixEntries(Slice())) {
    crc = crc32c::Extend(crc, key.data(), key.size());
    crc = crc32c::Extend(crc, value.data(), value.size());
    ++entries;
  }
  h = Mix64(h + entries);
  h = Mix64(h ^ (static_cast<uint64_t>(crc) << 16));
  // Stay clear of DecodeCache::RegisterDataset's small counter ids.
  return h | (1ull << 63);
}

Result<std::shared_ptr<PcrDaemon::DatasetEntry>> PcrDaemon::AcquireDataset(
    const std::string& dir) {
  const std::string canonical = CanonicalPath(dir);
  std::lock_guard<std::mutex> lock(datasets_mu_);
  auto it = datasets_.find(canonical);
  if (it != datasets_.end()) {
    ++it->second->refs;
    return it->second;
  }
  PCR_ASSIGN_OR_RETURN(uint64_t cache_id,
                       DeriveCacheDatasetId(env_, canonical));
  PCR_ASSIGN_OR_RETURN(std::unique_ptr<PcrDataset> dataset,
                       PcrDataset::Open(env_, canonical));
  auto entry = std::make_shared<DatasetEntry>();
  entry->canonical_dir = canonical;
  entry->dataset = std::move(dataset);
  entry->cache_id = cache_id;
  entry->refs = 1;
  if (options_.dataset_cache_share > 0) {
    decode_cache_->SetDatasetByteCap(
        cache_id,
        static_cast<uint64_t>(options_.dataset_cache_share *
                              static_cast<double>(
                                  options_.decode_cache_bytes)));
  }
  datasets_[canonical] = entry;
  return entry;
}

void PcrDaemon::ReleaseDataset(const std::shared_ptr<DatasetEntry>& entry) {
  std::lock_guard<std::mutex> lock(datasets_mu_);
  if (--entry->refs > 0) return;
  // Last stream over this dataset: release its cache share (entries stay
  // resident for the next open of the same generation — the cap only gates
  // admission) and drop the open dataset.
  decode_cache_->SetDatasetByteCap(entry->cache_id, 0);
  datasets_.erase(entry->canonical_dir);
}

// --- Teardown ---------------------------------------------------------------

void PcrDaemon::TeardownStream(uint64_t stream_id) {
  std::shared_ptr<Stream> stream;
  {
    std::lock_guard<std::mutex> lock(streams_mu_);
    auto it = streams_.find(stream_id);
    if (it == streams_.end()) return;  // Already torn down (idempotent).
    stream = it->second;
    streams_.erase(it);
    --admitted_streams_;
  }
  {
    std::lock_guard<std::mutex> lock(stream->mu);
    stream->closing = true;
  }
  stream->cv.notify_all();
  scheduler_.Unregister(stream_id);  // Unblocks a parked Acquire.
  // Closing the ring unblocks a server thread parked on slot backpressure
  // and reclaims any slots a vanished client never returned.
  if (stream->ring) stream->ring->Close();
  stream->pipeline->Stop();          // Unblocks Next().
  if (stream->server.joinable()) stream->server.join();
  // The pipeline is deliberately NOT reset here: a BuildStats that copied
  // this stream's shared_ptr before the erase above may still be reading
  // io_stats() off the (stopped) pipeline. The Stream destructor frees it
  // when the last reference drops. The dataset stays open with it — the
  // stream's DatasetEntry ref keeps the PcrDataset the pipeline points at
  // alive; ReleaseDataset only drops the registry entry and cache share.
  if (stream->dataset) ReleaseDataset(stream->dataset);
}

void PcrDaemon::TeardownConnection(const std::shared_ptr<Connection>& conn) {
  std::vector<uint64_t> ids;
  {
    std::lock_guard<std::mutex> lock(conn->streams_mu);
    ids.swap(conn->stream_ids);
  }
  for (uint64_t id : ids) TeardownStream(id);
}

// --- Stats ------------------------------------------------------------------

StatsReply PcrDaemon::BuildStats(uint64_t stream_id) {
  StatsReply reply;
  std::vector<std::shared_ptr<Stream>> streams;
  {
    std::lock_guard<std::mutex> lock(streams_mu_);
    reply.active_streams = static_cast<uint32_t>(streams_.size());
    for (const auto& [id, stream] : streams_) {
      if (stream_id == 0 || id == stream_id) streams.push_back(stream);
    }
  }
  reply.max_streams = static_cast<uint32_t>(options_.max_streams);
  const DecodeCacheStats cache = decode_cache_->stats();
  reply.cache_bytes_in_use = cache.bytes_in_use;
  reply.cache_capacity_bytes = cache.capacity_bytes;
  reply.cache_hits = cache.hits;
  reply.cache_misses = cache.misses;
  for (const auto& stream : streams) {
    const StageStatsSnapshot serve =
        stream->stats.Snapshot("serve", 1, stream->max_inflight);
    // Safe without stream->mu even against a concurrent TeardownStream:
    // the pipeline is assigned before the stream is published in streams_
    // and never reset afterwards (teardown only Stop()s it; the Stream
    // destructor frees it), so this shared_ptr copy pins a live pipeline.
    const StageStatsSnapshot io = stream->pipeline->io_stats();
    StreamStats out;
    out.stream_id = stream->id;
    out.client_name = stream->client_name;
    out.served_batches = serve.items;
    out.served_images = stream->served_images.load(std::memory_order_relaxed);
    out.served_bytes = serve.bytes;
    out.queue_wait_p50_sec = serve.queue_wait_p50_sec;
    out.queue_wait_p99_sec = serve.queue_wait_p99_sec;
    out.batch_p50_sec = serve.batch_p50_sec;
    out.batch_p99_sec = serve.batch_p99_sec;
    out.cache_hits = io.cache_hits;
    out.cache_misses = io.cache_misses;
    out.shm_batches = serve.shm_batches;
    out.shm_slot_waits = serve.shm_slot_waits;
    out.bytes_copied = serve.bytes_copied;
    // Zero-copy cache hits happen in the pipeline's IO stage (the cache
    // entry is handed out by reference instead of deep-copied).
    out.zero_copy_hits = io.zero_copy_hits;
    out.zero_copy_bytes = io.zero_copy_bytes;
    reply.streams.push_back(std::move(out));
  }
  return reply;
}

}  // namespace pcr::serve
