// Shared JPEG decode state machine: marker parsing, baseline and progressive
// entropy decoding (including successive-approximation refinement), and
// graceful handling of truncated / early-EOI streams (the PCR partial-read
// case).
//
// DecoderT is templated over the entropy reader so the production decoder
// (BitReader: buffered 64-bit accumulator + table-driven Huffman) and the
// reference decoder (ReferenceBitReader: the seed's byte-at-a-time reader +
// bit-by-bit canonical Huffman walk) run the exact same spec logic and can
// be diffed block by block in the parity tests. Internal header: include
// from jpeg/*.cc only.
#pragma once

#include <algorithm>
#include <array>

#include "jpeg/bit_io.h"
#include "jpeg/codec.h"
#include "jpeg/constants.h"
#include "jpeg/dct.h"
#include "jpeg/huffman.h"
#include "util/logging.h"

namespace pcr::jpeg::internal {

/// Symbol decode dispatch: the fast reader takes the LUT path, any other
/// reader the canonical bit-by-bit walk. Overload resolution prefers the
/// exact non-template match for BitReader.
inline int DecodeHuffSymbol(const HuffTable& table, BitReader* reader) {
  return table.DecodeSymbol(reader);
}
template <class Reader>
int DecodeHuffSymbol(const HuffTable& table, Reader* reader) {
  return table.DecodeSymbolBitwise(reader);
}

/// Dequantizes one block into natural order, clamping into the fixed-point
/// IDCT's safe input range (only corrupt streams ever clamp). Shared by the
/// fast and reference renderers so both feed the IDCT identical inputs.
inline void DequantizeBlock(const CoeffBlock& block, const QuantTable& qtbl,
                            int32_t out[64]) {
  for (int i = 0; i < 64; ++i) {
    const int32_t v =
        static_cast<int32_t>(block[i]) * static_cast<int32_t>(qtbl[i]);
    out[i] = std::clamp(v, -kMaxDequantizedCoeff, kMaxDequantizedCoeff);
  }
}

/// True when every AC coefficient of the block is zero — the common case
/// for low progressive scan prefixes, short-circuited to a flat fill.
inline bool AcAllZero(const CoeffBlock& block) {
  for (int i = 1; i < 64; ++i) {
    if (block[i] != 0) return false;
  }
  return true;
}

template <class Reader>
int ReceiveExtend(Reader* reader, int s) {
  const int v = static_cast<int>(reader->ReadBits(s));
  if (v < (1 << (s - 1))) return v - (1 << s) + 1;
  return v;
}

template <class EntropyReader>
class DecoderT {
 public:
  static constexpr int kMaxComponents = 4;

  /// `scratch` may be null (self-owned coefficient storage). With scratch,
  /// coefficient planes live in scratch->coeffs and are reused across
  /// decodes with no allocation when shapes repeat.
  explicit DecoderT(Slice data, DecodeScratch* scratch = nullptr)
      : data_(data), scratch_(scratch) {}

  Status Parse();

  bool have_frame() const { return have_frame_; }
  const FrameInfo& frame() const { return frame_; }
  int scans_decoded() const { return scans_decoded_; }
  bool complete() const;
  const CoeffImage& coefficients() const { return *coeffs_; }
  const QuantTable* quant_tables() const { return qtables_; }

  JpegData TakeJpegData() {
    JpegData out;
    out.frame = frame_;
    out.quant_tables.assign(qtables_, qtables_ + 4);
    out.coefficients = std::move(*coeffs_);
    return out;
  }

 private:
  // -- Marker-level parsing ------------------------------------------------

  uint8_t Byte(size_t i) const { return static_cast<uint8_t>(data_[i]); }

  // Reads the next marker byte (after 0xFF, skipping fill bytes). Returns
  // -1 on end of data.
  int NextMarker() {
    while (pos_ + 1 < data_.size()) {
      if (Byte(pos_) != 0xff) {
        // Garbage between segments; tolerate by skipping.
        ++pos_;
        continue;
      }
      size_t p = pos_ + 1;
      while (p < data_.size() && Byte(p) == 0xff) ++p;  // Fill bytes.
      if (p >= data_.size()) return -1;
      const uint8_t marker = Byte(p);
      if (marker == 0x00) {  // Stuffed byte, not a marker; shouldn't happen
        pos_ = p + 1;        // outside entropy data, but skip defensively.
        continue;
      }
      pos_ = p + 1;
      return marker;
    }
    return -1;
  }

  // Reads a 16-bit big-endian length (which includes itself) and returns the
  // payload slice, advancing past it.
  Result<Slice> ReadSegment() {
    if (pos_ + 2 > data_.size()) return Status::Corruption("truncated segment");
    const uint16_t len =
        static_cast<uint16_t>((Byte(pos_) << 8) | Byte(pos_ + 1));
    if (len < 2 || pos_ + len > data_.size()) {
      return Status::Corruption("bad segment length");
    }
    Slice payload(data_.data() + pos_ + 2, len - 2);
    pos_ += len;
    return payload;
  }

  Status ParseDqt(Slice payload);
  Status ParseDht(Slice payload);
  Status ParseSof(Slice payload, bool progressive);
  Status ParseSos(Slice payload, ScanSpec* scan);
  Status DecodeScanData(const ScanSpec& scan);

  // -- Entropy decoding ----------------------------------------------------

  // All Decode*Block return false on truncation (reader exhausted), which
  // aborts the scan without error; corrupt symbols return a Status via
  // scan_error_.
  bool DecodeBaselineBlock(EntropyReader* reader, const ScanSpec& scan, int ci,
                           CoeffBlock* block);
  bool DecodeDcFirst(EntropyReader* reader, const ScanSpec& scan, int ci,
                     CoeffBlock* block);
  bool DecodeDcRefine(EntropyReader* reader, const ScanSpec& scan,
                      CoeffBlock* block);
  bool DecodeAcFirst(EntropyReader* reader, const ScanSpec& scan, int ci,
                     CoeffBlock* block);
  bool DecodeAcRefine(EntropyReader* reader, const ScanSpec& scan, int ci,
                      CoeffBlock* block);
  bool DecodeBlock(EntropyReader* reader, const ScanSpec& scan, int ci,
                   CoeffBlock* block);

  const HuffTable* DcTable(int ci) const {
    const int slot = dc_slot_[ci];
    return (dc_valid_ & (1 << slot)) ? &dc_tables_[slot] : nullptr;
  }
  const HuffTable* AcTable(int ci) const {
    const int slot = ac_slot_[ci];
    return (ac_valid_ & (1 << slot)) ? &ac_tables_[slot] : nullptr;
  }

  // Tracks successive-approximation progress for completeness reporting.
  void NoteScanProgress(const ScanSpec& scan) {
    for (int ci : scan.component_indices) {
      for (int k = scan.ss; k <= scan.se; ++k) {
        coeff_al_[ci][k] = scan.al;
        coeff_seen_[ci][k] = true;
      }
    }
  }

  Slice data_;
  DecodeScratch* scratch_;
  size_t pos_ = 0;

  bool have_frame_ = false;
  FrameInfo frame_;
  QuantTable qtables_[4] = {};
  // Huffman tables live in fixed slots (no per-stream allocation); the
  // valid bitmasks track which slots a DHT has populated.
  HuffTable dc_tables_[4];
  HuffTable ac_tables_[4];
  uint8_t dc_valid_ = 0;
  uint8_t ac_valid_ = 0;
  CoeffImage own_coeffs_;          // Used when no scratch is supplied.
  CoeffImage* coeffs_ = nullptr;   // Active storage (scratch or own).

  std::array<int, kMaxComponents> dc_slot_{};  // From the current SOS.
  std::array<int, kMaxComponents> ac_slot_{};
  std::array<int, kMaxComponents> dc_pred_{};
  int eob_run_ = 0;
  Status scan_error_;

  int scans_decoded_ = 0;
  bool saw_eoi_ = false;
  bool truncated_ = false;
  std::array<std::array<int, 64>, kMaxComponents> coeff_al_{};
  std::array<std::array<bool, 64>, kMaxComponents> coeff_seen_{};
};

template <class EntropyReader>
Status DecoderT<EntropyReader>::ParseDqt(Slice payload) {
  while (!payload.empty()) {
    const uint8_t pq_tq = static_cast<uint8_t>(payload[0]);
    payload.RemovePrefix(1);
    const int precision = pq_tq >> 4;
    const int slot = pq_tq & 0x0f;
    if (slot > 3) return Status::Corruption("DQT: bad slot");
    const size_t need = precision ? 128 : 64;
    if (payload.size() < need) return Status::Corruption("DQT: truncated");
    for (int i = 0; i < 64; ++i) {
      uint16_t v;
      if (precision) {
        v = static_cast<uint16_t>((static_cast<uint8_t>(payload[2 * i]) << 8) |
                                  static_cast<uint8_t>(payload[2 * i + 1]));
      } else {
        v = static_cast<uint8_t>(payload[i]);
      }
      qtables_[slot][kZigzag[i]] = v;
    }
    payload.RemovePrefix(need);
  }
  return Status::OK();
}

template <class EntropyReader>
Status DecoderT<EntropyReader>::ParseDht(Slice payload) {
  while (!payload.empty()) {
    if (payload.size() < 17) return Status::Corruption("DHT: truncated");
    const uint8_t tc_th = static_cast<uint8_t>(payload[0]);
    const int table_class = tc_th >> 4;
    const int slot = tc_th & 0x0f;
    if (table_class > 1 || slot > 3) {
      return Status::Corruption("DHT: bad class/slot");
    }
    uint8_t bits[16];
    int total = 0;
    for (int i = 0; i < 16; ++i) {
      bits[i] = static_cast<uint8_t>(payload[1 + i]);
      total += bits[i];
    }
    if (payload.size() < static_cast<size_t>(17 + total)) {
      return Status::Corruption("DHT: truncated values");
    }
    PCR_ASSIGN_OR_RETURN(auto table,
                         HuffTable::FromSpec(bits, payload.udata() + 17,
                                             total));
    if (table_class == 0) {
      dc_tables_[slot] = table;
      dc_valid_ |= static_cast<uint8_t>(1 << slot);
    } else {
      ac_tables_[slot] = table;
      ac_valid_ |= static_cast<uint8_t>(1 << slot);
    }
    payload.RemovePrefix(17 + total);
  }
  return Status::OK();
}

template <class EntropyReader>
Status DecoderT<EntropyReader>::ParseSof(Slice payload, bool progressive) {
  if (have_frame_) return Status::Corruption("multiple SOF markers");
  if (payload.size() < 6) return Status::Corruption("SOF: truncated");
  const int precision = static_cast<uint8_t>(payload[0]);
  if (precision != 8) return Status::NotSupported("only 8-bit JPEG supported");
  frame_.height = (static_cast<uint8_t>(payload[1]) << 8) |
                  static_cast<uint8_t>(payload[2]);
  frame_.width = (static_cast<uint8_t>(payload[3]) << 8) |
                 static_cast<uint8_t>(payload[4]);
  const int num_comps = static_cast<uint8_t>(payload[5]);
  if (frame_.width == 0 || frame_.height == 0) {
    return Status::Corruption("SOF: zero dimensions");
  }
  if (num_comps != 1 && num_comps != 3) {
    return Status::NotSupported("only 1- or 3-component JPEG supported");
  }
  if (payload.size() < static_cast<size_t>(6 + 3 * num_comps)) {
    return Status::Corruption("SOF: truncated components");
  }
  frame_.progressive = progressive;
  for (int c = 0; c < num_comps; ++c) {
    ComponentInfo info;
    info.id = static_cast<uint8_t>(payload[6 + 3 * c]);
    const uint8_t hv = static_cast<uint8_t>(payload[7 + 3 * c]);
    info.h_samp = hv >> 4;
    info.v_samp = hv & 0x0f;
    info.quant_tbl = static_cast<uint8_t>(payload[8 + 3 * c]);
    if (info.h_samp < 1 || info.h_samp > 4 || info.v_samp < 1 ||
        info.v_samp > 4 || info.quant_tbl > 3) {
      return Status::Corruption("SOF: bad component params");
    }
    frame_.components.push_back(info);
  }
  frame_.ComputeGeometry();
  coeffs_ = scratch_ != nullptr ? &scratch_->coeffs : &own_coeffs_;
  coeffs_->Reset(frame_);
  for (int c = 0; c < num_comps; ++c) {
    coeff_al_[c].fill(99);
    coeff_seen_[c].fill(false);
  }
  have_frame_ = true;
  return Status::OK();
}

template <class EntropyReader>
Status DecoderT<EntropyReader>::ParseSos(Slice payload, ScanSpec* scan) {
  if (!have_frame_) return Status::Corruption("SOS before SOF");
  if (payload.size() < 4) return Status::Corruption("SOS: truncated");
  const int ns = static_cast<uint8_t>(payload[0]);
  if (ns < 1 || ns > 4 ||
      payload.size() < static_cast<size_t>(1 + 2 * ns + 3)) {
    return Status::Corruption("SOS: bad component count");
  }
  for (size_t c = 0; c < frame_.components.size(); ++c) {
    dc_slot_[c] = 0;
    ac_slot_[c] = 0;
  }
  for (int i = 0; i < ns; ++i) {
    const int comp_id = static_cast<uint8_t>(payload[1 + 2 * i]);
    const uint8_t td_ta = static_cast<uint8_t>(payload[2 + 2 * i]);
    int ci = -1;
    for (size_t c = 0; c < frame_.components.size(); ++c) {
      if (frame_.components[c].id == comp_id) {
        ci = static_cast<int>(c);
        break;
      }
    }
    if (ci < 0) return Status::Corruption("SOS: unknown component id");
    scan->component_indices.push_back(ci);
    dc_slot_[ci] = td_ta >> 4;
    ac_slot_[ci] = td_ta & 0x0f;
    if (dc_slot_[ci] > 3 || ac_slot_[ci] > 3) {
      return Status::Corruption("SOS: bad table slot");
    }
  }
  scan->ss = static_cast<uint8_t>(payload[1 + 2 * ns]);
  scan->se = static_cast<uint8_t>(payload[2 + 2 * ns]);
  const uint8_t ahl = static_cast<uint8_t>(payload[3 + 2 * ns]);
  scan->ah = ahl >> 4;
  scan->al = ahl & 0x0f;
  if (scan->ss > 63 || scan->se > 63 || scan->ss > scan->se) {
    return Status::Corruption("SOS: bad spectral selection");
  }
  if (!frame_.progressive && (scan->ss != 0 || scan->se != 63 ||
                              scan->ah != 0 || scan->al != 0)) {
    return Status::Corruption("SOS: progressive params in baseline frame");
  }
  return Status::OK();
}

template <class EntropyReader>
bool DecoderT<EntropyReader>::DecodeBaselineBlock(EntropyReader* reader,
                                                  const ScanSpec&, int ci,
                                                  CoeffBlock* block) {
  const HuffTable* dc = DcTable(ci);
  const HuffTable* ac = AcTable(ci);
  if (dc == nullptr || ac == nullptr) {
    scan_error_ = Status::Corruption("scan references undefined table");
    return false;
  }
  const int s = DecodeHuffSymbol(*dc, reader);
  if (s < 0) {
    if (!reader->Exhausted()) {
      scan_error_ = Status::Corruption("bad DC symbol");
    }
    return false;
  }
  int diff = 0;
  if (s > 0) {
    if (s > 15) {
      scan_error_ = Status::Corruption("bad DC category");
      return false;
    }
    diff = ReceiveExtend(reader, s);
  }
  if (reader->Exhausted()) return false;
  dc_pred_[ci] += diff;
  (*block)[0] = static_cast<int16_t>(dc_pred_[ci]);

  int k = 1;
  while (k <= 63) {
    const int rs = DecodeHuffSymbol(*ac, reader);
    if (rs < 0) {
      if (!reader->Exhausted()) {
        scan_error_ = Status::Corruption("bad AC symbol");
      }
      return false;
    }
    const int r = rs >> 4;
    const int size = rs & 15;
    if (size == 0) {
      if (r == 15) {
        k += 16;
        continue;
      }
      break;  // EOB.
    }
    k += r;
    if (k > 63) {
      scan_error_ = Status::Corruption("AC index out of range");
      return false;
    }
    const int v = ReceiveExtend(reader, size);
    if (reader->Exhausted()) return false;
    (*block)[kZigzag[k]] = static_cast<int16_t>(v);
    ++k;
  }
  return true;
}

template <class EntropyReader>
bool DecoderT<EntropyReader>::DecodeDcFirst(EntropyReader* reader,
                                            const ScanSpec& scan, int ci,
                                            CoeffBlock* block) {
  const HuffTable* dc = DcTable(ci);
  if (dc == nullptr) {
    scan_error_ = Status::Corruption("scan references undefined DC table");
    return false;
  }
  const int s = DecodeHuffSymbol(*dc, reader);
  if (s < 0) {
    if (!reader->Exhausted()) scan_error_ = Status::Corruption("bad DC symbol");
    return false;
  }
  int diff = 0;
  if (s > 0) {
    if (s > 15) {
      scan_error_ = Status::Corruption("bad DC category");
      return false;
    }
    diff = ReceiveExtend(reader, s);
  }
  if (reader->Exhausted()) return false;
  dc_pred_[ci] += diff;
  (*block)[0] = static_cast<int16_t>(dc_pred_[ci] * (1 << scan.al));
  return true;
}

template <class EntropyReader>
bool DecoderT<EntropyReader>::DecodeDcRefine(EntropyReader* reader,
                                             const ScanSpec& scan,
                                             CoeffBlock* block) {
  const int bit = reader->ReadBit();
  if (reader->Exhausted()) return false;
  if (bit) (*block)[0] = static_cast<int16_t>((*block)[0] | (1 << scan.al));
  return true;
}

template <class EntropyReader>
bool DecoderT<EntropyReader>::DecodeAcFirst(EntropyReader* reader,
                                            const ScanSpec& scan, int ci,
                                            CoeffBlock* block) {
  if (eob_run_ > 0) {
    --eob_run_;
    return true;
  }
  const HuffTable* ac = AcTable(ci);
  if (ac == nullptr) {
    scan_error_ = Status::Corruption("scan references undefined AC table");
    return false;
  }
  int k = scan.ss;
  while (k <= scan.se) {
    const int rs = DecodeHuffSymbol(*ac, reader);
    if (rs < 0) {
      if (!reader->Exhausted()) {
        scan_error_ = Status::Corruption("bad AC symbol");
      }
      return false;
    }
    const int r = rs >> 4;
    const int size = rs & 15;
    if (size != 0) {
      k += r;
      if (k > scan.se) {
        scan_error_ = Status::Corruption("AC first: index out of band");
        return false;
      }
      const int v = ReceiveExtend(reader, size);
      if (reader->Exhausted()) return false;
      (*block)[kZigzag[k]] = static_cast<int16_t>(v * (1 << scan.al));
      ++k;
    } else {
      if (r == 15) {
        k += 16;
        continue;
      }
      eob_run_ = (1 << r) - 1;
      if (r > 0) {
        eob_run_ += static_cast<int>(reader->ReadBits(r));
        if (reader->Exhausted()) return false;
      }
      break;
    }
  }
  return true;
}

template <class EntropyReader>
bool DecoderT<EntropyReader>::DecodeAcRefine(EntropyReader* reader,
                                             const ScanSpec& scan, int ci,
                                             CoeffBlock* block) {
  const int p1 = 1 << scan.al;
  const int m1 = -(1 << scan.al);
  int k = scan.ss;

  auto refine_nonzero = [&](int16_t* coef) -> bool {
    const int bit = reader->ReadBit();
    if (reader->Exhausted()) return false;
    if (bit && (*coef & p1) == 0) {
      *coef = static_cast<int16_t>(*coef + (*coef >= 0 ? p1 : m1));
    }
    return true;
  };

  if (eob_run_ == 0) {
    const HuffTable* ac = AcTable(ci);
    if (ac == nullptr) {
      scan_error_ = Status::Corruption("scan references undefined AC table");
      return false;
    }
    for (; k <= scan.se; ++k) {
      const int rs = DecodeHuffSymbol(*ac, reader);
      if (rs < 0) {
        if (!reader->Exhausted()) {
          scan_error_ = Status::Corruption("bad AC refine symbol");
        }
        return false;
      }
      int r = rs >> 4;
      const int size = rs & 15;
      int pending = 0;
      if (size != 0) {
        if (size != 1) {
          scan_error_ = Status::Corruption("AC refine: size != 1");
          return false;
        }
        const int bit = reader->ReadBit();
        if (reader->Exhausted()) return false;
        pending = bit ? p1 : m1;
      } else {
        if (r != 15) {
          eob_run_ = 1 << r;
          if (r > 0) {
            eob_run_ += static_cast<int>(reader->ReadBits(r));
            if (reader->Exhausted()) return false;
          }
          break;
        }
        // ZRL: skip 16 zero-history positions, refining set ones passed.
      }
      // Advance to the insertion point: skip r zero-history coefficients,
      // emitting correction bits for nonzero ones encountered.
      while (k <= scan.se) {
        int16_t* coef = &(*block)[kZigzag[k]];
        if (*coef != 0) {
          if (!refine_nonzero(coef)) return false;
        } else {
          if (r == 0) break;
          --r;
        }
        ++k;
      }
      if (pending != 0 && k <= scan.se) {
        (*block)[kZigzag[k]] = static_cast<int16_t>(pending);
      }
    }
  }

  if (eob_run_ > 0) {
    // Remainder of the band: correction bits for nonzero coefficients only.
    for (; k <= scan.se; ++k) {
      int16_t* coef = &(*block)[kZigzag[k]];
      if (*coef != 0) {
        if (!refine_nonzero(coef)) return false;
      }
    }
    --eob_run_;
  }
  return true;
}

template <class EntropyReader>
bool DecoderT<EntropyReader>::DecodeBlock(EntropyReader* reader,
                                          const ScanSpec& scan, int ci,
                                          CoeffBlock* block) {
  if (!frame_.progressive) {
    return DecodeBaselineBlock(reader, scan, ci, block);
  }
  if (scan.IsDcScan()) {
    return scan.ah == 0 ? DecodeDcFirst(reader, scan, ci, block)
                        : DecodeDcRefine(reader, scan, block);
  }
  return scan.ah == 0 ? DecodeAcFirst(reader, scan, ci, block)
                      : DecodeAcRefine(reader, scan, ci, block);
}

template <class EntropyReader>
Status DecoderT<EntropyReader>::DecodeScanData(const ScanSpec& scan) {
  Slice entropy(data_.data() + pos_, data_.size() - pos_);
  EntropyReader reader(entropy);
  for (size_t c = 0; c < frame_.components.size(); ++c) dc_pred_[c] = 0;
  eob_run_ = 0;
  scan_error_ = Status::OK();

  bool ok = true;
  if (scan.component_indices.size() > 1) {
    const int mcus_x = frame_.mcus_x();
    const int mcus_y = frame_.mcus_y();
    for (int my = 0; my < mcus_y && ok; ++my) {
      for (int mx = 0; mx < mcus_x && ok; ++mx) {
        for (size_t s = 0; s < scan.component_indices.size() && ok; ++s) {
          const int ci = scan.component_indices[s];
          const auto& comp = frame_.components[ci];
          for (int v = 0; v < comp.v_samp && ok; ++v) {
            for (int h = 0; h < comp.h_samp && ok; ++h) {
              ok = DecodeBlock(&reader, scan, ci,
                               &coeffs_->block(ci, mx * comp.h_samp + h,
                                               my * comp.v_samp + v));
            }
          }
        }
      }
    }
  } else {
    const int ci = scan.component_indices[0];
    const auto& comp = frame_.components[ci];
    for (int by = 0; by < comp.height_blocks && ok; ++by) {
      for (int bx = 0; bx < comp.width_blocks && ok; ++bx) {
        ok = DecodeBlock(&reader, scan, ci, &coeffs_->block(ci, bx, by));
      }
    }
  }

  if (!scan_error_.ok()) return scan_error_;
  if (!ok) {
    truncated_ = true;  // Ran off the end of the entropy data.
  } else {
    ++scans_decoded_;
    NoteScanProgress(scan);
  }

  // Advance to the next marker, whether or not the scan completed.
  size_t p = pos_;
  while (p + 1 < data_.size()) {
    if (Byte(p) == 0xff && Byte(p + 1) != 0x00) break;
    ++p;
  }
  if (p + 1 >= data_.size()) {
    pos_ = data_.size();
    truncated_ = true;
  } else {
    pos_ = p;
  }
  return Status::OK();
}

template <class EntropyReader>
Status DecoderT<EntropyReader>::Parse() {
  if (data_.size() < 2 || Byte(0) != 0xff || Byte(1) != kSOI) {
    return Status::InvalidArgument("not a JPEG (missing SOI)");
  }
  pos_ = 2;
  for (;;) {
    const int marker = NextMarker();
    if (marker < 0) {
      truncated_ = true;
      break;
    }
    if (marker == kEOI) {
      saw_eoi_ = true;
      break;
    }
    switch (marker) {
      case kSOI:
        return Status::Corruption("nested SOI");
      case kDQT: {
        PCR_ASSIGN_OR_RETURN(Slice payload, ReadSegment());
        PCR_RETURN_IF_ERROR(ParseDqt(payload));
        break;
      }
      case kDHT: {
        PCR_ASSIGN_OR_RETURN(Slice payload, ReadSegment());
        PCR_RETURN_IF_ERROR(ParseDht(payload));
        break;
      }
      case kSOF0:
      case kSOF2: {
        PCR_ASSIGN_OR_RETURN(Slice payload, ReadSegment());
        PCR_RETURN_IF_ERROR(ParseSof(payload, marker == kSOF2));
        break;
      }
      case kDRI: {
        PCR_ASSIGN_OR_RETURN(Slice payload, ReadSegment());
        if (payload.size() >= 2 &&
            ((static_cast<uint8_t>(payload[0]) << 8) |
             static_cast<uint8_t>(payload[1])) != 0) {
          return Status::NotSupported("restart intervals not supported");
        }
        break;
      }
      case kSOS: {
        PCR_ASSIGN_OR_RETURN(Slice payload, ReadSegment());
        ScanSpec scan;
        PCR_RETURN_IF_ERROR(ParseSos(payload, &scan));
        PCR_RETURN_IF_ERROR(DecodeScanData(scan));
        if (pos_ >= data_.size()) return Status::OK();
        break;
      }
      default: {
        if (marker >= 0xC0 && marker <= 0xCF && marker != kDHT) {
          return Status::NotSupported("unsupported SOF type");
        }
        if (marker >= kRST0 && marker <= kRST0 + 7) {
          break;  // Parameterless; skip.
        }
        // APPn / COM / anything else with a length: skip.
        PCR_ASSIGN_OR_RETURN(Slice payload, ReadSegment());
        (void)payload;
        break;
      }
    }
  }
  return Status::OK();
}

template <class EntropyReader>
bool DecoderT<EntropyReader>::complete() const {
  if (!saw_eoi_ || truncated_ || !have_frame_) return false;
  if (!frame_.progressive) return scans_decoded_ >= 1;
  for (size_t c = 0; c < frame_.components.size(); ++c) {
    for (int k = 0; k < 64; ++k) {
      if (!coeff_seen_[c][k] || coeff_al_[c][k] != 0) return false;
    }
  }
  return true;
}

}  // namespace pcr::jpeg::internal
