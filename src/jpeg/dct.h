// 8x8 forward and inverse DCT (type II / III).
//
// Two inverse implementations live here:
//  - InverseDct8x8: double-precision separable reference. Precision over
//    speed; it is the accuracy oracle the fixed-point path is tested
//    against, and the encoder's ForwardDct8x8 companion.
//  - InverseDct8x8Fixed: the decode hot path. A fixed-point integer
//    Loeffler-style separable butterfly IDCT (the libjpeg "islow"
//    structure, widened to 64-bit intermediates with 18-bit constants for
//    headroom and accuracy) that takes dequantized coefficients and writes
//    clamped 8-bit samples directly, with per-column and all-AC-zero
//    short-circuits that are bit-exact with the general path.
#pragma once

#include <cstdint>

namespace pcr::jpeg {

/// Forward DCT of an 8x8 spatial block (level-shifted samples, i.e. centered
/// on 0) into coefficients. in/out may not alias.
void ForwardDct8x8(const double in[64], double out[64]);

/// Inverse DCT of an 8x8 coefficient block into (level-shifted) samples.
void InverseDct8x8(const double in[64], double out[64]);

/// Largest dequantized coefficient magnitude the fixed-point path accepts;
/// inputs beyond this must be clamped by the caller (DequantizeBlock does).
/// Any legitimate 8-bit JPEG stays far below it: |coefficient| <= 2048 + q/2
/// < 2^16 even with 16-bit quantizers, so only corrupt streams clamp.
inline constexpr int32_t kMaxDequantizedCoeff = (1 << 23) - 1;

/// Fixed-point inverse DCT of one dequantized coefficient block (natural
/// row-major order, every entry within +/-kMaxDequantizedCoeff) straight to
/// 8-bit samples: +128 level shift and [0, 255] clamp applied, rounding
/// half up like the double path's `+ 0.5` convention. Output rows are
/// written at `out_stride` samples apart.
void InverseDct8x8Fixed(const int32_t coeff[64], uint8_t* out, int out_stride);

}  // namespace pcr::jpeg
