// 8x8 forward and inverse DCT (type II / III), double-precision separable
// implementation. Precision over speed: the transcoder's losslessness proof
// depends only on entropy coding, but round-trip PSNR tests depend on the
// transform being accurate.
#pragma once

#include <cstdint>

namespace pcr::jpeg {

/// Forward DCT of an 8x8 spatial block (level-shifted samples, i.e. centered
/// on 0) into coefficients. in/out may not alias.
void ForwardDct8x8(const double in[64], double out[64]);

/// Inverse DCT of an 8x8 coefficient block into (level-shifted) samples.
void InverseDct8x8(const double in[64], double out[64]);

}  // namespace pcr::jpeg
