// JPEG constants: markers, zigzag order, Annex K quantization tables with
// libjpeg-compatible quality scaling, and the Annex K "typical" Huffman
// tables used for baseline encoding when table optimization is disabled.
#pragma once

#include <array>
#include <cstdint>

namespace pcr::jpeg {

/// Marker bytes (the second byte; all markers are 0xFF <byte>).
enum Marker : uint8_t {
  kSOI = 0xD8,   // Start of image.
  kEOI = 0xD9,   // End of image.
  kSOS = 0xDA,   // Start of scan.
  kDQT = 0xDB,   // Define quantization table(s).
  kDHT = 0xC4,   // Define Huffman table(s).
  kSOF0 = 0xC0,  // Baseline DCT frame.
  kSOF2 = 0xC2,  // Progressive DCT frame.
  kDRI = 0xDD,   // Define restart interval.
  kAPP0 = 0xE0,  // JFIF.
  kCOM = 0xFE,   // Comment.
  kRST0 = 0xD0,  // Restart markers D0..D7.
};

/// Zigzag order: kZigzag[i] = natural (row-major) index of the i-th
/// coefficient in zigzag order.
extern const std::array<uint8_t, 64> kZigzag;

/// Inverse map: natural index -> zigzag position.
extern const std::array<uint8_t, 64> kZigzagInverse;

/// Annex K Table K.1 (luminance) and K.2 (chrominance) base quantizers, in
/// natural (row-major) order.
extern const std::array<uint16_t, 64> kStdLumaQuant;
extern const std::array<uint16_t, 64> kStdChromaQuant;

/// Scales a base table by a libjpeg-style quality factor in [1, 100].
std::array<uint16_t, 64> ScaleQuantTable(const std::array<uint16_t, 64>& base,
                                         int quality);

/// Annex K typical Huffman table spec: 16 length counts + value list.
struct HuffSpec {
  const uint8_t* bits;  // counts[1..16], 16 entries.
  const uint8_t* values;
  int num_values;
};

HuffSpec StdDcLumaSpec();
HuffSpec StdDcChromaSpec();
HuffSpec StdAcLumaSpec();
HuffSpec StdAcChromaSpec();

}  // namespace pcr::jpeg
