// Quantized-coefficient representation of a JPEG image — the common currency
// between the baseline decoder, the progressive encoder (lossless
// transcoding), and partial-scan reconstruction.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include "util/logging.h"

namespace pcr::jpeg {

/// One 8x8 block of quantized coefficients in natural (row-major) order.
using CoeffBlock = std::array<int16_t, 64>;

/// Per-component frame parameters.
struct ComponentInfo {
  int id = 0;          // Component identifier byte (1=Y, 2=Cb, 3=Cr here).
  int h_samp = 1;      // Horizontal sampling factor.
  int v_samp = 1;      // Vertical sampling factor.
  int quant_tbl = 0;   // Quantization table slot.

  // Derived geometry (filled by FrameInfo::ComputeGeometry).
  int width = 0;            // Component sample dimensions.
  int height = 0;
  int width_blocks = 0;     // ceil(width / 8): non-interleaved block counts.
  int height_blocks = 0;
  int width_blocks_padded = 0;   // Rounded up to whole MCUs (interleaved).
  int height_blocks_padded = 0;
};

/// Frame-level parameters (from SOF).
struct FrameInfo {
  int width = 0;
  int height = 0;
  bool progressive = false;
  std::vector<ComponentInfo> components;

  int max_h_samp() const {
    int m = 1;
    for (const auto& c : components) m = std::max(m, c.h_samp);
    return m;
  }
  int max_v_samp() const {
    int m = 1;
    for (const auto& c : components) m = std::max(m, c.v_samp);
    return m;
  }
  int mcus_x() const {
    return (width + 8 * max_h_samp() - 1) / (8 * max_h_samp());
  }
  int mcus_y() const {
    return (height + 8 * max_v_samp() - 1) / (8 * max_v_samp());
  }

  /// Fills the derived geometry fields of every component.
  void ComputeGeometry() {
    const int hmax = max_h_samp();
    const int vmax = max_v_samp();
    for (auto& c : components) {
      c.width = (width * c.h_samp + hmax - 1) / hmax;
      c.height = (height * c.v_samp + vmax - 1) / vmax;
      c.width_blocks = (c.width + 7) / 8;
      c.height_blocks = (c.height + 7) / 8;
      c.width_blocks_padded = mcus_x() * c.h_samp;
      c.height_blocks_padded = mcus_y() * c.v_samp;
    }
  }
};

/// Scan parameters (from SOS): participating components and the progressive
/// spectral-selection / successive-approximation window.
struct ScanSpec {
  std::vector<int> component_indices;  // Indices into FrameInfo::components.
  int ss = 0;   // Spectral selection start (0 = DC).
  int se = 63;  // Spectral selection end.
  int ah = 0;   // Successive approximation high (0 on first pass).
  int al = 0;   // Successive approximation low (bit position).

  bool IsDcScan() const { return ss == 0; }
  bool IsRefinement() const { return ah != 0; }
};

/// Coefficient storage for all components at padded (whole-MCU) dimensions.
class CoeffImage {
 public:
  CoeffImage() = default;

  /// Allocates zeroed blocks per the frame geometry (ComputeGeometry must
  /// have been called).
  explicit CoeffImage(const FrameInfo& frame) { Reset(frame); }

  /// Re-dimensions to the frame geometry and zero-fills, reusing existing
  /// block storage when it is large enough — the decode-scratch path, where
  /// same-shaped images recycle one allocation.
  void Reset(const FrameInfo& frame) {
    comps_.resize(frame.components.size());
    for (size_t c = 0; c < frame.components.size(); ++c) {
      const auto& info = frame.components[c];
      comps_[c].width_blocks = info.width_blocks_padded;
      comps_[c].height_blocks = info.height_blocks_padded;
      comps_[c].blocks.resize(static_cast<size_t>(info.width_blocks_padded) *
                              info.height_blocks_padded);
      if (!comps_[c].blocks.empty()) {
        std::memset(comps_[c].blocks.data(), 0,
                    comps_[c].blocks.size() * sizeof(CoeffBlock));
      }
    }
  }

  CoeffBlock& block(int comp, int bx, int by) {
    auto& c = comps_[comp];
    PCR_DCHECK(bx >= 0 && bx < c.width_blocks && by >= 0 &&
               by < c.height_blocks);
    return c.blocks[static_cast<size_t>(by) * c.width_blocks + bx];
  }
  const CoeffBlock& block(int comp, int bx, int by) const {
    const auto& c = comps_[comp];
    return c.blocks[static_cast<size_t>(by) * c.width_blocks + bx];
  }

  int width_blocks(int comp) const { return comps_[comp].width_blocks; }
  int height_blocks(int comp) const { return comps_[comp].height_blocks; }
  int num_components() const { return static_cast<int>(comps_.size()); }

  bool operator==(const CoeffImage& other) const {
    if (comps_.size() != other.comps_.size()) return false;
    for (size_t c = 0; c < comps_.size(); ++c) {
      if (comps_[c].blocks != other.comps_[c].blocks) return false;
    }
    return true;
  }

 private:
  struct ComponentCoeffs {
    int width_blocks = 0;
    int height_blocks = 0;
    std::vector<CoeffBlock> blocks;
  };
  std::vector<ComponentCoeffs> comps_;
};

/// Quantization tables by slot.
using QuantTable = std::array<uint16_t, 64>;

}  // namespace pcr::jpeg
