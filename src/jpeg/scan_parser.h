// Scan-boundary indexer: walks a JPEG's marker structure *without* entropy
// decoding and reports the byte ranges of the header and of each scan unit
// (the DHT segments belonging to a scan plus its SOS and entropy data).
//
// This is the paper's "the encoder scans the binary representation of the
// progressive JPEG files, searching for the markers that designate the end
// of a scan [...] the encoder thus has access to all 10 offsets within the
// JPEG files" (§3.2).
#pragma once

#include <cstddef>
#include <vector>

#include "jpeg/coeff_image.h"
#include "util/result.h"
#include "util/slice.h"

namespace pcr::jpeg {

/// One scan unit: bytes [start, end) cover any DHT segments emitted for the
/// scan, the SOS marker+header, and the entropy-coded data.
struct ScanRange {
  size_t start = 0;
  size_t end = 0;
  ScanSpec spec;  // Component ids are *frame component indices*.

  size_t size() const { return end - start; }
};

/// Byte-structure of a JPEG: header, scans, trailing EOI.
struct JpegScanIndex {
  /// Bytes [0, header_end) hold SOI, APPn, DQT, SOF — everything every scan
  /// prefix needs.
  size_t header_end = 0;
  std::vector<ScanRange> scans;
  /// Offset of the EOI marker (== scans.back().end for well-formed files).
  size_t eoi_offset = 0;
  bool has_eoi = false;
  int num_components = 0;
  bool progressive = false;
};

/// Indexes the scan structure. Does not entropy-decode; cost is a single
/// pass over the bytes.
Result<JpegScanIndex> IndexScans(Slice jpeg);

/// Reassembles a standalone JPEG containing only the first `num_scans` scans
/// (header + scan units + EOI). With num_scans >= scans.size() this is the
/// original image, byte-identical except for trailing data after EOI.
std::string AssemblePrefix(Slice jpeg, const JpegScanIndex& index,
                           int num_scans);

}  // namespace pcr::jpeg
