#include "jpeg/scan_script.h"

namespace pcr::jpeg {

std::vector<ScanSpec> DefaultProgressiveScript(int num_components) {
  std::vector<ScanSpec> script;
  auto add = [&](std::vector<int> comps, int ss, int se, int ah, int al) {
    ScanSpec s;
    s.component_indices = std::move(comps);
    s.ss = ss;
    s.se = se;
    s.ah = ah;
    s.al = al;
    script.push_back(std::move(s));
  };

  if (num_components == 1) {
    add({0}, 0, 0, 0, 1);    // DC first pass.
    add({0}, 1, 5, 0, 2);    // Low AC.
    add({0}, 6, 63, 0, 2);   // High AC.
    add({0}, 1, 63, 2, 1);   // AC refinement.
    add({0}, 0, 0, 1, 0);    // DC refinement.
    add({0}, 1, 63, 1, 0);   // Final AC refinement.
    return script;
  }

  add({0, 1, 2}, 0, 0, 0, 1);  // 1: DC first pass, interleaved.
  add({0}, 1, 5, 0, 2);        // 2: Y low AC.
  add({2}, 1, 63, 0, 1);       // 3: Cr full AC.
  add({1}, 1, 63, 0, 1);       // 4: Cb full AC.
  add({0}, 6, 63, 0, 2);       // 5: Y high AC.
  add({0}, 1, 63, 2, 1);       // 6: Y AC refinement (2 -> 1).
  add({0, 1, 2}, 0, 0, 1, 0);  // 7: DC refinement.
  add({2}, 1, 63, 1, 0);       // 8: Cr AC refinement.
  add({1}, 1, 63, 1, 0);       // 9: Cb AC refinement.
  add({0}, 1, 63, 1, 0);       // 10: Y AC refinement.
  return script;
}

std::vector<ScanSpec> BaselineScript(int num_components) {
  ScanSpec s;
  for (int c = 0; c < num_components; ++c) s.component_indices.push_back(c);
  s.ss = 0;
  s.se = 63;
  s.ah = 0;
  s.al = 0;
  return {s};
}

bool ValidateProgressiveScript(const std::vector<ScanSpec>& script,
                               int num_components) {
  // Tracks the next expected Ah per (component, coefficient).
  // 0 means "no pass seen yet" (first pass must have ah == 0).
  std::vector<std::array<int, 64>> next_ah(num_components);
  std::vector<std::array<bool, 64>> seen(num_components);
  for (auto& arr : next_ah) arr.fill(0);
  for (auto& arr : seen) arr.fill(false);

  for (const auto& scan : script) {
    if (scan.component_indices.empty()) return false;
    if (scan.ss > scan.se || scan.se > 63) return false;
    if (scan.ss == 0 && scan.se != 0) {
      // DC must not be mixed with AC in progressive scans.
      return false;
    }
    if (scan.ss > 0 && scan.component_indices.size() != 1) {
      return false;  // AC scans must be single-component.
    }
    if (scan.ah != 0 && scan.ah != scan.al + 1) {
      return false;  // Refinements shave exactly one bit.
    }
    for (int ci : scan.component_indices) {
      if (ci < 0 || ci >= num_components) return false;
      for (int k = scan.ss; k <= scan.se; ++k) {
        if (!seen[ci][k]) {
          if (scan.ah != 0) return false;  // Refinement before first pass.
          seen[ci][k] = true;
          next_ah[ci][k] = scan.al;
        } else {
          if (scan.ah != next_ah[ci][k]) return false;
          next_ah[ci][k] = scan.al;
        }
      }
    }
  }
  // Every coefficient must end at Al = 0 for a complete image; partial
  // scripts are allowed (PCR truncates), so this is not enforced here.
  return true;
}

}  // namespace pcr::jpeg
