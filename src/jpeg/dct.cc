#include "jpeg/dct.h"

#include <cmath>

namespace pcr::jpeg {

namespace {

// cos((2x+1) u pi / 16) lookup, and the 1/2 C(u) normalization.
struct DctTables {
  double cosine[8][8];  // [x][u]
  double scale[8];      // C(u)/2

  DctTables() {
    for (int x = 0; x < 8; ++x) {
      for (int u = 0; u < 8; ++u) {
        cosine[x][u] = std::cos((2 * x + 1) * u * M_PI / 16.0);
      }
    }
    for (int u = 0; u < 8; ++u) {
      scale[u] = 0.5 * (u == 0 ? 1.0 / std::sqrt(2.0) : 1.0);
    }
  }
};

const DctTables& Tables() {
  static const DctTables tables;
  return tables;
}

}  // namespace

void ForwardDct8x8(const double in[64], double out[64]) {
  const DctTables& t = Tables();
  double tmp[64];
  // Rows.
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      double acc = 0.0;
      for (int x = 0; x < 8; ++x) acc += in[y * 8 + x] * t.cosine[x][u];
      tmp[y * 8 + u] = acc * t.scale[u];
    }
  }
  // Columns.
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      double acc = 0.0;
      for (int y = 0; y < 8; ++y) acc += tmp[y * 8 + u] * t.cosine[y][v];
      out[v * 8 + u] = acc * t.scale[v];
    }
  }
}

namespace {

// Fixed-point parameters. Constants carry kConstBits fractional bits; the
// column pass keeps kPass1Bits extra fractional bits in its intermediate so
// the row pass rounds once from high precision. All arithmetic is int64:
// with |input| < 2^23 (kMaxDequantizedCoeff) the column pass peaks below
// 2^45, its descaled output below 2^37, and row-pass products below 2^57 —
// no overflow even on hostile coefficients.
constexpr int kConstBits = 18;
constexpr int kPass1Bits = 10;

constexpr int64_t Fix(double x) {
  return static_cast<int64_t>(x * (int64_t{1} << kConstBits) + 0.5);
}

constexpr int64_t kFix0_298631336 = Fix(0.298631336);
constexpr int64_t kFix0_390180644 = Fix(0.390180644);
constexpr int64_t kFix0_541196100 = Fix(0.541196100);
constexpr int64_t kFix0_765366865 = Fix(0.765366865);
constexpr int64_t kFix0_899976223 = Fix(0.899976223);
constexpr int64_t kFix1_175875602 = Fix(1.175875602);
constexpr int64_t kFix1_501321110 = Fix(1.501321110);
constexpr int64_t kFix1_847759065 = Fix(1.847759065);
constexpr int64_t kFix1_961570560 = Fix(1.961570560);
constexpr int64_t kFix2_053119869 = Fix(2.053119869);
constexpr int64_t kFix2_562915447 = Fix(2.562915447);
constexpr int64_t kFix3_072711026 = Fix(3.072711026);

// Rounding right shift (round half up; >> on a negative int64 is an
// arithmetic shift with gcc/clang, i.e. floor, which the +half turns into
// round-half-up — the same convention as the double path's `+ 0.5`).
inline int64_t Descale(int64_t x, int n) {
  return (x + (int64_t{1} << (n - 1))) >> n;
}

// Left shifts of possibly-negative intermediates are spelled as
// multiplications by these powers of two: a negative << is UB until C++20
// and the UBSan CI job runs with -fno-sanitize-recover.
constexpr int64_t kConstScale = int64_t{1} << kConstBits;
constexpr int64_t kPass1Scale = int64_t{1} << kPass1Bits;

inline uint8_t ClampSample(int64_t level_shifted) {
  // level_shifted is the descaled sample + 128.
  if (level_shifted < 0) return 0;
  if (level_shifted > 255) return 255;
  return static_cast<uint8_t>(level_shifted);
}

// One Loeffler 1-D inverse butterfly over inputs already scaled by
// 2^kConstBits relative to the desired output. `shift` is the final
// descale; outputs land in `out` at `stride`.
// (Shared shape of both passes; kept inline by hand in the hot function
// below — this declaration only documents the structure.)

}  // namespace

void InverseDct8x8Fixed(const int32_t coeff[64], uint8_t* out,
                        int out_stride) {
  int64_t ws[64];  // Column-pass output, scaled by 2^kPass1Bits.

  // Pass 1: columns. A column whose AC terms are all zero short-circuits to
  // a constant column; the shift below makes that exactly equal to what the
  // butterflies produce for the same input.
  for (int c = 0; c < 8; ++c) {
    const int32_t* col = coeff + c;
    if ((col[8] | col[16] | col[24] | col[32] | col[40] | col[48] |
         col[56]) == 0) {
      const int64_t dcval = static_cast<int64_t>(col[0]) * kPass1Scale;
      for (int r = 0; r < 8; ++r) ws[r * 8 + c] = dcval;
      continue;
    }

    // Even part.
    const int64_t z2 = col[16];
    const int64_t z3 = col[48];
    const int64_t z1 = (z2 + z3) * kFix0_541196100;
    const int64_t tmp2 = z1 + z3 * (-kFix1_847759065);
    const int64_t tmp3 = z1 + z2 * kFix0_765366865;

    const int64_t tmp0 =
        (static_cast<int64_t>(col[0]) + col[32]) * kConstScale;
    const int64_t tmp1 =
        (static_cast<int64_t>(col[0]) - col[32]) * kConstScale;

    const int64_t tmp10 = tmp0 + tmp3;
    const int64_t tmp13 = tmp0 - tmp3;
    const int64_t tmp11 = tmp1 + tmp2;
    const int64_t tmp12 = tmp1 - tmp2;

    // Odd part.
    int64_t t0 = col[56];
    int64_t t1 = col[40];
    int64_t t2 = col[24];
    int64_t t3 = col[8];

    const int64_t z1o = t0 + t3;
    const int64_t z2o = t1 + t2;
    const int64_t z3o = t0 + t2;
    const int64_t z4o = t1 + t3;
    const int64_t z5 = (z3o + z4o) * kFix1_175875602;

    t0 *= kFix0_298631336;
    t1 *= kFix2_053119869;
    t2 *= kFix3_072711026;
    t3 *= kFix1_501321110;
    const int64_t z1m = z1o * (-kFix0_899976223);
    const int64_t z2m = z2o * (-kFix2_562915447);
    const int64_t z3m = z3o * (-kFix1_961570560) + z5;
    const int64_t z4m = z4o * (-kFix0_390180644) + z5;

    t0 += z1m + z3m;
    t1 += z2m + z4m;
    t2 += z2m + z3m;
    t3 += z1m + z4m;

    ws[8 * 0 + c] = Descale(tmp10 + t3, kConstBits - kPass1Bits);
    ws[8 * 7 + c] = Descale(tmp10 - t3, kConstBits - kPass1Bits);
    ws[8 * 1 + c] = Descale(tmp11 + t2, kConstBits - kPass1Bits);
    ws[8 * 6 + c] = Descale(tmp11 - t2, kConstBits - kPass1Bits);
    ws[8 * 2 + c] = Descale(tmp12 + t1, kConstBits - kPass1Bits);
    ws[8 * 5 + c] = Descale(tmp12 - t1, kConstBits - kPass1Bits);
    ws[8 * 3 + c] = Descale(tmp13 + t0, kConstBits - kPass1Bits);
    ws[8 * 4 + c] = Descale(tmp13 - t0, kConstBits - kPass1Bits);
  }

  // Pass 2: rows, with the final descale, +128 level shift and clamp.
  constexpr int kFinalShift = kConstBits + kPass1Bits + 3;
  for (int r = 0; r < 8; ++r) {
    const int64_t* row = ws + r * 8;
    uint8_t* dst = out + r * out_stride;
    if ((row[1] | row[2] | row[3] | row[4] | row[5] | row[6] | row[7]) ==
        0) {
      const uint8_t dcval =
          ClampSample(Descale(row[0], kPass1Bits + 3) + 128);
      for (int x = 0; x < 8; ++x) dst[x] = dcval;
      continue;
    }

    // Even part.
    const int64_t z2 = row[2];
    const int64_t z3 = row[6];
    const int64_t z1 = (z2 + z3) * kFix0_541196100;
    const int64_t tmp2 = z1 + z3 * (-kFix1_847759065);
    const int64_t tmp3 = z1 + z2 * kFix0_765366865;

    const int64_t tmp0 = (row[0] + row[4]) * kConstScale;
    const int64_t tmp1 = (row[0] - row[4]) * kConstScale;

    const int64_t tmp10 = tmp0 + tmp3;
    const int64_t tmp13 = tmp0 - tmp3;
    const int64_t tmp11 = tmp1 + tmp2;
    const int64_t tmp12 = tmp1 - tmp2;

    // Odd part.
    int64_t t0 = row[7];
    int64_t t1 = row[5];
    int64_t t2 = row[3];
    int64_t t3 = row[1];

    const int64_t z1o = t0 + t3;
    const int64_t z2o = t1 + t2;
    const int64_t z3o = t0 + t2;
    const int64_t z4o = t1 + t3;
    const int64_t z5 = (z3o + z4o) * kFix1_175875602;

    t0 *= kFix0_298631336;
    t1 *= kFix2_053119869;
    t2 *= kFix3_072711026;
    t3 *= kFix1_501321110;
    const int64_t z1m = z1o * (-kFix0_899976223);
    const int64_t z2m = z2o * (-kFix2_562915447);
    const int64_t z3m = z3o * (-kFix1_961570560) + z5;
    const int64_t z4m = z4o * (-kFix0_390180644) + z5;

    t0 += z1m + z3m;
    t1 += z2m + z4m;
    t2 += z2m + z3m;
    t3 += z1m + z4m;

    dst[0] = ClampSample(Descale(tmp10 + t3, kFinalShift) + 128);
    dst[7] = ClampSample(Descale(tmp10 - t3, kFinalShift) + 128);
    dst[1] = ClampSample(Descale(tmp11 + t2, kFinalShift) + 128);
    dst[6] = ClampSample(Descale(tmp11 - t2, kFinalShift) + 128);
    dst[2] = ClampSample(Descale(tmp12 + t1, kFinalShift) + 128);
    dst[5] = ClampSample(Descale(tmp12 - t1, kFinalShift) + 128);
    dst[3] = ClampSample(Descale(tmp13 + t0, kFinalShift) + 128);
    dst[4] = ClampSample(Descale(tmp13 - t0, kFinalShift) + 128);
  }
}

void InverseDct8x8(const double in[64], double out[64]) {
  const DctTables& t = Tables();
  double tmp[64];
  // Columns.
  for (int u = 0; u < 8; ++u) {
    for (int y = 0; y < 8; ++y) {
      double acc = 0.0;
      for (int v = 0; v < 8; ++v) {
        acc += t.scale[v] * in[v * 8 + u] * t.cosine[y][v];
      }
      tmp[y * 8 + u] = acc;
    }
  }
  // Rows.
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      double acc = 0.0;
      for (int u = 0; u < 8; ++u) {
        acc += t.scale[u] * tmp[y * 8 + u] * t.cosine[x][u];
      }
      out[y * 8 + x] = acc;
    }
  }
}

}  // namespace pcr::jpeg
