#include "jpeg/dct.h"

#include <cmath>

#include "arch/kernels.h"

namespace pcr::jpeg {

namespace {

// cos((2x+1) u pi / 16) lookup, and the 1/2 C(u) normalization.
struct DctTables {
  double cosine[8][8];  // [x][u]
  double scale[8];      // C(u)/2

  DctTables() {
    for (int x = 0; x < 8; ++x) {
      for (int u = 0; u < 8; ++u) {
        cosine[x][u] = std::cos((2 * x + 1) * u * M_PI / 16.0);
      }
    }
    for (int u = 0; u < 8; ++u) {
      scale[u] = 0.5 * (u == 0 ? 1.0 / std::sqrt(2.0) : 1.0);
    }
  }
};

const DctTables& Tables() {
  static const DctTables tables;
  return tables;
}

}  // namespace

void ForwardDct8x8(const double in[64], double out[64]) {
  const DctTables& t = Tables();
  double tmp[64];
  // Rows.
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      double acc = 0.0;
      for (int x = 0; x < 8; ++x) acc += in[y * 8 + x] * t.cosine[x][u];
      tmp[y * 8 + u] = acc * t.scale[u];
    }
  }
  // Columns.
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      double acc = 0.0;
      for (int y = 0; y < 8; ++y) acc += tmp[y * 8 + u] * t.cosine[y][v];
      out[v * 8 + u] = acc * t.scale[v];
    }
  }
}

// The fixed-point inverse DCT now lives in src/arch/ (kernels_scalar.cc is
// the canonical body, formerly here) so SSE2/AVX2 variants can share its
// constants and be dispatched at runtime. This wrapper keeps the historical
// entry point; hot paths call arch::Active().idct8x8 directly.
void InverseDct8x8Fixed(const int32_t coeff[64], uint8_t* out,
                        int out_stride) {
  arch::IdctScalar(coeff, out, out_stride);
}

void InverseDct8x8(const double in[64], double out[64]) {
  const DctTables& t = Tables();
  double tmp[64];
  // Columns.
  for (int u = 0; u < 8; ++u) {
    for (int y = 0; y < 8; ++y) {
      double acc = 0.0;
      for (int v = 0; v < 8; ++v) {
        acc += t.scale[v] * in[v * 8 + u] * t.cosine[y][v];
      }
      tmp[y * 8 + u] = acc;
    }
  }
  // Rows.
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      double acc = 0.0;
      for (int u = 0; u < 8; ++u) {
        acc += t.scale[u] * tmp[y * 8 + u] * t.cosine[x][u];
      }
      out[y * 8 + x] = acc;
    }
  }
}

}  // namespace pcr::jpeg
