// JPEG encoder: image -> quantized coefficients -> entropy-coded baseline or
// progressive stream. Progressive scans follow ITU-T T.81 G.1; the AC
// refinement encoder mirrors the correction-bit buffering of libjpeg's
// jcphuff.c, which the decoder (decoder.cc) inverts.
#include <cmath>
#include <cstring>
#include <memory>

#include "jpeg/bit_io.h"
#include "jpeg/codec.h"
#include "jpeg/constants.h"
#include "jpeg/dct.h"
#include "jpeg/huffman.h"
#include "util/logging.h"

namespace pcr::jpeg {

namespace {

// Magnitude category: number of bits to represent |v| (v != 0 -> >= 1).
int NumBits(int v) {
  if (v < 0) v = -v;
  int n = 0;
  while (v > 0) {
    ++n;
    v >>= 1;
  }
  return n;
}

void AppendMarker(std::string* out, uint8_t marker) {
  out->push_back(static_cast<char>(0xff));
  out->push_back(static_cast<char>(marker));
}

void AppendU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v >> 8));
  out->push_back(static_cast<char>(v & 0xff));
}

void AppendApp0Jfif(std::string* out) {
  AppendMarker(out, kAPP0);
  AppendU16(out, 16);
  out->append("JFIF", 5);  // Includes the NUL.
  out->push_back(1);       // Version 1.1.
  out->push_back(1);
  out->push_back(0);  // Units: none.
  AppendU16(out, 1);  // X density.
  AppendU16(out, 1);  // Y density.
  out->push_back(0);  // Thumbnail w/h.
  out->push_back(0);
}

void AppendDqt(std::string* out, int slot, const QuantTable& table) {
  AppendMarker(out, kDQT);
  AppendU16(out, 2 + 1 + 64);
  out->push_back(static_cast<char>(slot));  // 8-bit precision.
  for (int i = 0; i < 64; ++i) {
    out->push_back(static_cast<char>(table[kZigzag[i]]));
  }
}

void AppendSof(std::string* out, const FrameInfo& frame) {
  AppendMarker(out, frame.progressive ? kSOF2 : kSOF0);
  AppendU16(out, static_cast<uint16_t>(8 + 3 * frame.components.size()));
  out->push_back(8);  // Sample precision.
  AppendU16(out, static_cast<uint16_t>(frame.height));
  AppendU16(out, static_cast<uint16_t>(frame.width));
  out->push_back(static_cast<char>(frame.components.size()));
  for (const auto& c : frame.components) {
    out->push_back(static_cast<char>(c.id));
    out->push_back(static_cast<char>((c.h_samp << 4) | c.v_samp));
    out->push_back(static_cast<char>(c.quant_tbl));
  }
}

void AppendDht(std::string* out, int table_class, int slot,
               const HuffTable& table) {
  AppendMarker(out, kDHT);
  AppendU16(out, static_cast<uint16_t>(2 + 1 + 16 + table.num_values()));
  out->push_back(static_cast<char>((table_class << 4) | slot));
  for (int i = 0; i < 16; ++i) {
    out->push_back(static_cast<char>(table.bits()[i]));
  }
  out->append(reinterpret_cast<const char*>(table.values()),
              table.num_values());
}

void AppendSos(std::string* out, const FrameInfo& frame, const ScanSpec& scan,
               const std::vector<int>& dc_slot, const std::vector<int>& ac_slot) {
  AppendMarker(out, kSOS);
  AppendU16(out,
            static_cast<uint16_t>(6 + 2 * scan.component_indices.size()));
  out->push_back(static_cast<char>(scan.component_indices.size()));
  for (int ci : scan.component_indices) {
    out->push_back(static_cast<char>(frame.components[ci].id));
    out->push_back(static_cast<char>((dc_slot[ci] << 4) | ac_slot[ci]));
  }
  out->push_back(static_cast<char>(scan.ss));
  out->push_back(static_cast<char>(scan.se));
  out->push_back(static_cast<char>((scan.ah << 4) | scan.al));
}

// Sink abstraction letting one scan-encoding routine serve both the
// statistics pass (optimal Huffman table construction) and the emit pass.
class EntropySink {
 public:
  virtual ~EntropySink() = default;
  virtual void Symbol(int table_class, int slot, int sym) = 0;
  virtual void Bits(uint32_t bits, int count) = 0;
};

class StatsSink : public EntropySink {
 public:
  void Symbol(int table_class, int slot, int sym) override {
    freqs_[table_class][slot].Count(sym);
  }
  void Bits(uint32_t, int) override {}

  HuffFrequencies& freq(int table_class, int slot) {
    return freqs_[table_class][slot];
  }

 private:
  HuffFrequencies freqs_[2][4];
};

class EmitSink : public EntropySink {
 public:
  EmitSink(BitWriter* writer, const HuffTable* (*lookup)(void*, int, int),
           void* ctx)
      : writer_(writer), lookup_(lookup), ctx_(ctx) {}

  void Symbol(int table_class, int slot, int sym) override {
    const HuffTable* t = lookup_(ctx_, table_class, slot);
    PCR_CHECK(t != nullptr);
    t->EncodeSymbol(writer_, sym);
  }
  void Bits(uint32_t bits, int count) override {
    writer_->WriteBits(bits, count);
  }

 private:
  BitWriter* writer_;
  const HuffTable* (*lookup_)(void*, int, int);
  void* ctx_;
};

// Per-scan entropy encoding state and routines.
class ScanEncoder {
 public:
  ScanEncoder(const JpegData& data, const ScanSpec& scan,
              const std::vector<int>& dc_slot, const std::vector<int>& ac_slot,
              EntropySink* sink)
      : data_(data), scan_(scan), dc_slot_(dc_slot), ac_slot_(ac_slot),
        sink_(sink) {
    dc_pred_.assign(data.frame.components.size(), 0);
  }

  void EncodeScan() {
    const FrameInfo& frame = data_.frame;
    const bool interleaved = scan_.component_indices.size() > 1;
    if (interleaved) {
      // Interleaved (DC or baseline) scan in MCU order over padded dims.
      const int mcus_x = frame.mcus_x();
      const int mcus_y = frame.mcus_y();
      for (int my = 0; my < mcus_y; ++my) {
        for (int mx = 0; mx < mcus_x; ++mx) {
          for (int ci : scan_.component_indices) {
            const auto& comp = frame.components[ci];
            for (int v = 0; v < comp.v_samp; ++v) {
              for (int h = 0; h < comp.h_samp; ++h) {
                EncodeBlock(ci, mx * comp.h_samp + h, my * comp.v_samp + v);
              }
            }
          }
        }
      }
    } else {
      // Non-interleaved: nominal block dims of the single component.
      const int ci = scan_.component_indices[0];
      const auto& comp = frame.components[ci];
      for (int by = 0; by < comp.height_blocks; ++by) {
        for (int bx = 0; bx < comp.width_blocks; ++bx) {
          EncodeBlock(ci, bx, by);
        }
      }
    }
    FlushEobRun();
  }

 private:
  void EncodeBlock(int ci, int bx, int by) {
    const CoeffBlock& block = data_.coefficients.block(ci, bx, by);
    if (!data_.frame.progressive) {
      EncodeBaselineBlock(ci, block);
      return;
    }
    if (scan_.IsDcScan()) {
      if (scan_.ah == 0) {
        EncodeDcFirst(ci, block);
      } else {
        EncodeDcRefine(block);
      }
    } else {
      if (scan_.ah == 0) {
        EncodeAcFirst(ci, block);
      } else {
        EncodeAcRefine(ci, block);
      }
    }
  }

  // Emits `value` as nbits of magnitude bits (ones-complement for negative).
  void EmitValueBits(int value, int nbits) {
    uint32_t bits = static_cast<uint32_t>(value);
    if (value < 0) bits = static_cast<uint32_t>(value - 1);
    sink_->Bits(bits & ((1u << nbits) - 1), nbits);
  }

  void EncodeBaselineBlock(int ci, const CoeffBlock& block) {
    // DC.
    const int dc = block[0];
    const int diff = dc - dc_pred_[ci];
    dc_pred_[ci] = dc;
    const int nbits = NumBits(diff);
    sink_->Symbol(0, dc_slot_[ci], nbits);
    if (nbits > 0) EmitValueBits(diff, nbits);
    // AC.
    int run = 0;
    for (int k = 1; k <= 63; ++k) {
      const int v = block[kZigzag[k]];
      if (v == 0) {
        ++run;
        continue;
      }
      while (run > 15) {
        sink_->Symbol(1, ac_slot_[ci], 0xF0);  // ZRL.
        run -= 16;
      }
      const int abits = NumBits(v);
      sink_->Symbol(1, ac_slot_[ci], (run << 4) | abits);
      EmitValueBits(v, abits);
      run = 0;
    }
    if (run > 0) sink_->Symbol(1, ac_slot_[ci], 0x00);  // EOB.
  }

  void EncodeDcFirst(int ci, const CoeffBlock& block) {
    const int dc = block[0] >> scan_.al;  // Arithmetic shift (signed).
    const int diff = dc - dc_pred_[ci];
    dc_pred_[ci] = dc;
    const int nbits = NumBits(diff);
    sink_->Symbol(0, dc_slot_[ci], nbits);
    if (nbits > 0) EmitValueBits(diff, nbits);
  }

  void EncodeDcRefine(const CoeffBlock& block) {
    sink_->Bits(static_cast<uint32_t>(block[0] >> scan_.al) & 1, 1);
  }

  void EncodeAcFirst(int ci, const CoeffBlock& block) {
    int run = 0;
    for (int k = scan_.ss; k <= scan_.se; ++k) {
      int v = block[kZigzag[k]];
      const bool negative = v < 0;
      if (negative) v = -v;
      v >>= scan_.al;
      if (v == 0) {
        ++run;
        continue;
      }
      FlushEobRun();
      while (run > 15) {
        sink_->Symbol(1, ac_slot_[ci], 0xF0);
        run -= 16;
      }
      const int nbits = NumBits(v);
      sink_->Symbol(1, ac_slot_[ci], (run << 4) | nbits);
      EmitValueBits(negative ? -v : v, nbits);
      run = 0;
    }
    if (run > 0) {
      ++eob_run_;
      if (eob_run_ == 0x7FFF) FlushEobRun();
    }
    pending_ac_slot_ = ac_slot_[ci];
  }

  void EncodeAcRefine(int ci, const CoeffBlock& block) {
    const int al = scan_.al;
    int absval[64];
    int eob_idx = scan_.ss - 1;  // Last newly-nonzero index.
    for (int k = scan_.ss; k <= scan_.se; ++k) {
      int v = block[kZigzag[k]];
      if (v < 0) v = -v;
      v >>= al;
      absval[k] = v;
      if (v == 1) eob_idx = k;
    }

    int run = 0;
    std::vector<uint8_t> block_bits;  // Correction bits since last symbol.
    for (int k = scan_.ss; k <= scan_.se; ++k) {
      const int v = absval[k];
      if (v == 0) {
        ++run;
        continue;
      }
      while (run > 15 && k <= eob_idx) {
        FlushEobRun();
        sink_->Symbol(1, ac_slot_[ci], 0xF0);
        run -= 16;
        EmitBufferedBits(&block_bits);
      }
      if (v > 1) {
        // Already nonzero from earlier scans: buffer its correction bit.
        block_bits.push_back(static_cast<uint8_t>(v & 1));
        continue;
      }
      // Newly nonzero this scan.
      FlushEobRun();
      sink_->Symbol(1, ac_slot_[ci], (run << 4) | 1);
      sink_->Bits(block[kZigzag[k]] < 0 ? 0 : 1, 1);
      EmitBufferedBits(&block_bits);
      run = 0;
    }
    if (run > 0 || !block_bits.empty()) {
      ++eob_run_;
      refinement_bits_.insert(refinement_bits_.end(), block_bits.begin(),
                              block_bits.end());
      // Flush well before the 32767 EOB-run ceiling or a large bit backlog.
      if (eob_run_ == 0x7FFF || refinement_bits_.size() > 900) {
        FlushEobRun();
      }
    }
    pending_ac_slot_ = ac_slot_[ci];
  }

  void EmitBufferedBits(std::vector<uint8_t>* bits) {
    for (uint8_t b : *bits) sink_->Bits(b, 1);
    bits->clear();
  }

  void FlushEobRun() {
    if (eob_run_ > 0) {
      const int nbits = NumBits(eob_run_) - 1;
      sink_->Symbol(1, pending_ac_slot_, nbits << 4);
      if (nbits > 0) {
        sink_->Bits(static_cast<uint32_t>(eob_run_) & ((1u << nbits) - 1),
                    nbits);
      }
      eob_run_ = 0;
    }
    EmitBufferedBits(&refinement_bits_);
  }

  const JpegData& data_;
  const ScanSpec& scan_;
  const std::vector<int>& dc_slot_;
  const std::vector<int>& ac_slot_;
  EntropySink* sink_;
  std::vector<int> dc_pred_;
  int eob_run_ = 0;
  int pending_ac_slot_ = 0;
  std::vector<uint8_t> refinement_bits_;
};

struct ScanTables {
  // Slot -> table; only slots referenced by the scan are populated.
  std::unique_ptr<HuffTable> dc[4];
  std::unique_ptr<HuffTable> ac[4];
};

const HuffTable* LookupScanTable(void* ctx, int table_class, int slot) {
  auto* tables = static_cast<ScanTables*>(ctx);
  return table_class == 0 ? tables->dc[slot].get() : tables->ac[slot].get();
}

}  // namespace

Result<std::string> EncodeFromData(const JpegData& data, bool progressive,
                                   std::vector<ScanSpec> script,
                                   bool optimize_huffman) {
  JpegData frame_data = data;  // Shallow-ish copy; coefficients copied too.
  frame_data.frame.progressive = progressive;
  if (script.empty()) {
    script = progressive
                 ? DefaultProgressiveScript(
                       static_cast<int>(data.frame.components.size()))
                 : BaselineScript(
                       static_cast<int>(data.frame.components.size()));
  }
  if (progressive &&
      !ValidateProgressiveScript(
          script, static_cast<int>(data.frame.components.size()))) {
    return Status::InvalidArgument("invalid progressive scan script");
  }

  // Huffman slot assignment: slot 0 for the first component, 1 for chroma.
  const size_t num_comps = data.frame.components.size();
  std::vector<int> dc_slot(num_comps), ac_slot(num_comps);
  for (size_t c = 0; c < num_comps; ++c) {
    dc_slot[c] = c == 0 ? 0 : 1;
    ac_slot[c] = c == 0 ? 0 : 1;
  }

  std::string out;
  AppendMarker(&out, kSOI);
  AppendApp0Jfif(&out);
  // Emit each quant table used by some component.
  bool slot_used[4] = {false, false, false, false};
  for (const auto& c : data.frame.components) {
    if (c.quant_tbl < 0 || c.quant_tbl >= 4 ||
        static_cast<size_t>(c.quant_tbl) >= data.quant_tables.size()) {
      return Status::InvalidArgument("bad quant table slot");
    }
    if (!slot_used[c.quant_tbl]) {
      AppendDqt(&out, c.quant_tbl, data.quant_tables[c.quant_tbl]);
      slot_used[c.quant_tbl] = true;
    }
  }
  AppendSof(&out, frame_data.frame);

  // Progressive always optimizes (as jpegtran does).
  const bool optimize = progressive || optimize_huffman;
  ScanTables std_tables;
  if (!optimize) {
    PCR_ASSIGN_OR_RETURN(auto dc0, HuffTable::FromSpec(StdDcLumaSpec()));
    PCR_ASSIGN_OR_RETURN(auto dc1, HuffTable::FromSpec(StdDcChromaSpec()));
    PCR_ASSIGN_OR_RETURN(auto ac0, HuffTable::FromSpec(StdAcLumaSpec()));
    PCR_ASSIGN_OR_RETURN(auto ac1, HuffTable::FromSpec(StdAcChromaSpec()));
    std_tables.dc[0] = std::make_unique<HuffTable>(std::move(dc0));
    std_tables.dc[1] = std::make_unique<HuffTable>(std::move(dc1));
    std_tables.ac[0] = std::make_unique<HuffTable>(std::move(ac0));
    std_tables.ac[1] = std::make_unique<HuffTable>(std::move(ac1));
    AppendDht(&out, 0, 0, *std_tables.dc[0]);
    AppendDht(&out, 1, 0, *std_tables.ac[0]);
    if (num_comps > 1) {
      AppendDht(&out, 0, 1, *std_tables.dc[1]);
      AppendDht(&out, 1, 1, *std_tables.ac[1]);
    }
  }

  for (const ScanSpec& scan : script) {
    ScanTables scan_tables;
    ScanTables* tables = optimize ? &scan_tables : &std_tables;
    if (optimize) {
      // Stats pass.
      StatsSink stats;
      ScanEncoder(frame_data, scan, dc_slot, ac_slot, &stats).EncodeScan();
      // Build+emit only tables with observed symbols.
      for (int slot = 0; slot < 4; ++slot) {
        if (!stats.freq(0, slot).Empty()) {
          PCR_ASSIGN_OR_RETURN(auto t, stats.freq(0, slot).BuildOptimal());
          scan_tables.dc[slot] = std::make_unique<HuffTable>(std::move(t));
          AppendDht(&out, 0, slot, *scan_tables.dc[slot]);
        }
        if (!stats.freq(1, slot).Empty()) {
          PCR_ASSIGN_OR_RETURN(auto t, stats.freq(1, slot).BuildOptimal());
          scan_tables.ac[slot] = std::make_unique<HuffTable>(std::move(t));
          AppendDht(&out, 1, slot, *scan_tables.ac[slot]);
        }
      }
    }
    AppendSos(&out, frame_data.frame, scan, dc_slot, ac_slot);
    BitWriter writer(&out);
    EmitSink emit(&writer, &LookupScanTable, tables);
    ScanEncoder(frame_data, scan, dc_slot, ac_slot, &emit).EncodeScan();
    writer.AlignToByte();
  }

  AppendMarker(&out, kEOI);
  return out;
}

namespace {

// Forward DCT + quantization of one component plane into coefficient blocks
// at padded dimensions (edge samples replicated).
void PlaneToCoefficients(const Plane& plane, const QuantTable& qtbl,
                         int width_blocks, int height_blocks, int comp,
                         CoeffImage* coeffs) {
  double spatial[64];
  double freq[64];
  for (int by = 0; by < height_blocks; ++by) {
    for (int bx = 0; bx < width_blocks; ++bx) {
      for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
          spatial[y * 8 + x] =
              static_cast<double>(plane.at_clamped(bx * 8 + x, by * 8 + y)) -
              128.0;
        }
      }
      ForwardDct8x8(spatial, freq);
      CoeffBlock& block = coeffs->block(comp, bx, by);
      for (int i = 0; i < 64; ++i) {
        const double q = static_cast<double>(qtbl[i]);
        block[i] = static_cast<int16_t>(std::lround(freq[i] / q));
      }
    }
  }
}

}  // namespace

Result<std::string> Encode(const Image& img, const EncodeOptions& options) {
  if (img.empty()) return Status::InvalidArgument("empty image");
  if (img.width() > 65535 || img.height() > 65535) {
    return Status::InvalidArgument("image too large for JPEG");
  }

  const PlanarImage planar = RgbToYcbcr(img, options.subsampling);
  const int num_comps = planar.num_components();

  JpegData data;
  data.frame.width = img.width();
  data.frame.height = img.height();
  data.frame.progressive = options.progressive;
  data.quant_tables.resize(num_comps > 1 ? 2 : 1);
  data.quant_tables[0] = ScaleQuantTable(kStdLumaQuant, options.quality);
  if (num_comps > 1) {
    data.quant_tables[1] = ScaleQuantTable(kStdChromaQuant, options.quality);
  }

  for (int c = 0; c < num_comps; ++c) {
    ComponentInfo info;
    info.id = c + 1;
    if (num_comps == 1) {
      info.h_samp = info.v_samp = 1;
    } else if (c == 0) {
      const bool sub = options.subsampling == ChromaSubsampling::k420;
      info.h_samp = info.v_samp = sub ? 2 : 1;
    } else {
      info.h_samp = info.v_samp = 1;
    }
    info.quant_tbl = c == 0 ? 0 : 1;
    data.frame.components.push_back(info);
  }
  data.frame.ComputeGeometry();
  data.coefficients = CoeffImage(data.frame);

  for (int c = 0; c < num_comps; ++c) {
    const auto& info = data.frame.components[c];
    PlaneToCoefficients(planar.planes[c], data.quant_tables[info.quant_tbl],
                        info.width_blocks_padded, info.height_blocks_padded, c,
                        &data.coefficients);
  }

  return EncodeFromData(data, options.progressive, options.scan_script,
                        options.optimize_huffman);
}

}  // namespace pcr::jpeg
