#include "jpeg/scan_parser.h"

#include "jpeg/constants.h"
#include "util/status.h"

namespace pcr::jpeg {

namespace {

uint8_t ByteAt(Slice data, size_t i) { return static_cast<uint8_t>(data[i]); }

// Returns the offset just past the entropy-coded data starting at `pos`
// (i.e. the offset of the next marker's 0xFF).
size_t SkipEntropy(Slice data, size_t pos) {
  while (pos + 1 < data.size()) {
    if (ByteAt(data, pos) == 0xff && ByteAt(data, pos + 1) != 0x00) {
      return pos;
    }
    ++pos;
  }
  return data.size();
}

}  // namespace

Result<JpegScanIndex> IndexScans(Slice jpeg) {
  if (jpeg.size() < 4 || ByteAt(jpeg, 0) != 0xff || ByteAt(jpeg, 1) != kSOI) {
    return Status::InvalidArgument("not a JPEG (missing SOI)");
  }
  JpegScanIndex index;
  size_t pos = 2;
  // Start of the DHT run (if any) that belongs to the upcoming scan.
  size_t pending_scan_start = 0;
  bool have_pending = false;
  bool have_frame = false;
  std::vector<int> comp_ids;

  while (pos + 1 < jpeg.size()) {
    if (ByteAt(jpeg, pos) != 0xff) {
      return Status::Corruption("expected marker");
    }
    size_t marker_pos = pos;
    ++pos;
    while (pos < jpeg.size() && ByteAt(jpeg, pos) == 0xff) ++pos;
    if (pos >= jpeg.size()) break;
    const uint8_t marker = ByteAt(jpeg, pos);
    ++pos;

    if (marker == kEOI) {
      index.eoi_offset = marker_pos;
      index.has_eoi = true;
      break;
    }
    if (marker >= kRST0 && marker <= kRST0 + 7) continue;  // Parameterless.

    if (pos + 2 > jpeg.size()) return Status::Corruption("truncated segment");
    const uint16_t len = static_cast<uint16_t>((ByteAt(jpeg, pos) << 8) |
                                               ByteAt(jpeg, pos + 1));
    if (len < 2 || pos + len > jpeg.size()) {
      return Status::Corruption("bad segment length");
    }
    const size_t seg_end = pos + len;

    switch (marker) {
      case kDHT:
        // Huffman tables between scans belong to the following scan unit.
        if (!have_pending) {
          pending_scan_start = marker_pos;
          have_pending = true;
        }
        break;
      case kSOF0:
      case kSOF2: {
        if (len < 8) return Status::Corruption("truncated SOF");
        index.progressive = marker == kSOF2;
        index.num_components = ByteAt(jpeg, pos + 7);
        if (static_cast<size_t>(8 + 3 * index.num_components) > len) {
          return Status::Corruption("truncated SOF components");
        }
        for (int c = 0; c < index.num_components; ++c) {
          comp_ids.push_back(ByteAt(jpeg, pos + 8 + 3 * c));
        }
        have_frame = true;
        break;
      }
      case kSOS: {
        if (!have_frame) return Status::Corruption("SOS before SOF");
        ScanRange range;
        range.start = have_pending ? pending_scan_start : marker_pos;
        have_pending = false;
        if (index.scans.empty()) {
          index.header_end = range.start;
        }
        // Parse the scan header for the spec.
        const int ns = ByteAt(jpeg, pos + 2);
        if (static_cast<size_t>(6 + 2 * ns) > len) {
          return Status::Corruption("truncated SOS");
        }
        for (int i = 0; i < ns; ++i) {
          const int id = ByteAt(jpeg, pos + 3 + 2 * i);
          int ci = -1;
          for (size_t c = 0; c < comp_ids.size(); ++c) {
            if (comp_ids[c] == id) ci = static_cast<int>(c);
          }
          if (ci < 0) return Status::Corruption("SOS: unknown component");
          range.spec.component_indices.push_back(ci);
        }
        range.spec.ss = ByteAt(jpeg, pos + 3 + 2 * ns);
        range.spec.se = ByteAt(jpeg, pos + 4 + 2 * ns);
        const uint8_t ahl = ByteAt(jpeg, pos + 5 + 2 * ns);
        range.spec.ah = ahl >> 4;
        range.spec.al = ahl & 0x0f;
        range.end = SkipEntropy(jpeg, seg_end);
        index.scans.push_back(range);
        pos = range.end;
        continue;
      }
      default:
        // DQT / APPn / COM / DRI: header material; a DHT run interrupted by
        // one of these still belongs to the next scan, so keep the pending
        // start as-is.
        break;
    }
    pos = seg_end;
  }

  if (!have_frame) return Status::Corruption("no SOF marker");
  if (index.scans.empty()) return Status::Corruption("no scans");
  if (!index.has_eoi) index.eoi_offset = jpeg.size();
  return index;
}

std::string AssemblePrefix(Slice jpeg, const JpegScanIndex& index,
                           int num_scans) {
  if (num_scans > static_cast<int>(index.scans.size())) {
    num_scans = static_cast<int>(index.scans.size());
  }
  std::string out(jpeg.data(), index.header_end);
  for (int i = 0; i < num_scans; ++i) {
    const ScanRange& range = index.scans[i];
    out.append(jpeg.data() + range.start, range.size());
  }
  out.push_back(static_cast<char>(0xff));
  out.push_back(static_cast<char>(kEOI));
  return out;
}

}  // namespace pcr::jpeg
