#include "jpeg/reference_codec.h"

#include <algorithm>

#include "image/color.h"
#include "jpeg/decoder_impl.h"

namespace pcr::jpeg {

namespace {

using ReferenceDecoder = internal::DecoderT<ReferenceBitReader>;

}  // namespace

Image ReferenceCodec::RenderCoefficients(const JpegData& data) {
  const FrameInfo& frame = data.frame;

  // Every block through the full IDCT into an 8x8 staging buffer, pixels
  // placed one at a time — no interior/edge split, no DC short-circuit.
  PlanarImage planar;
  planar.full_width = frame.width;
  planar.full_height = frame.height;
  for (size_t c = 0; c < frame.components.size(); ++c) {
    const auto& info = frame.components[c];
    const QuantTable& qtbl = data.quant_tables[info.quant_tbl];
    Plane plane(info.width, info.height);
    int32_t dq[64];
    uint8_t spatial[64];
    for (int by = 0; by < info.height_blocks; ++by) {
      for (int bx = 0; bx < info.width_blocks; ++bx) {
        internal::DequantizeBlock(
            data.coefficients.block(static_cast<int>(c), bx, by), qtbl, dq);
        InverseDct8x8Fixed(dq, spatial, 8);
        for (int y = 0; y < 8; ++y) {
          for (int x = 0; x < 8; ++x) {
            const int px = bx * 8 + x;
            const int py = by * 8 + y;
            if (px < info.width && py < info.height) {
              plane.set(px, py, spatial[y * 8 + x]);
            }
          }
        }
      }
    }
    planar.planes.push_back(std::move(plane));
  }

  // Per-pixel color conversion via the canonical scalar formulas.
  if (planar.num_components() == 1) {
    Image out(frame.width, frame.height, 1);
    for (int j = 0; j < frame.height; ++j) {
      for (int i = 0; i < frame.width; ++i) {
        out.set(i, j, 0, planar.planes[0].at(i, j));
      }
    }
    return out;
  }

  const Plane& y = planar.planes[0];
  const Plane& cb = planar.planes[1];
  const Plane& cr = planar.planes[2];
  const bool subsampled =
      cb.width() != frame.width || cb.height() != frame.height;
  Image out(frame.width, frame.height, 3);
  for (int j = 0; j < frame.height; ++j) {
    for (int i = 0; i < frame.width; ++i) {
      const int cbv =
          subsampled ? ycc::UpsampleAt(cb, i, j) : cb.at(i, j);
      const int crv =
          subsampled ? ycc::UpsampleAt(cr, i, j) : cr.at(i, j);
      uint8_t r, g, b;
      ycc::ToRgb(y.at(i, j), cbv, crv, &r, &g, &b);
      out.set(i, j, 0, r);
      out.set(i, j, 1, g);
      out.set(i, j, 2, b);
    }
  }
  return out;
}

Result<DecodeResult> ReferenceCodec::DecodeFull(Slice data) {
  ReferenceDecoder decoder(data);
  PCR_RETURN_IF_ERROR(decoder.Parse());
  if (!decoder.have_frame()) {
    return Status::Corruption("no frame header before end of data");
  }
  DecodeResult result;
  result.frame = decoder.frame();
  result.scans_decoded = decoder.scans_decoded();
  result.complete = decoder.complete();
  const JpegData jdata = decoder.TakeJpegData();
  result.image = RenderCoefficients(jdata);
  return result;
}

Result<Image> ReferenceCodec::Decode(Slice data) {
  PCR_ASSIGN_OR_RETURN(DecodeResult result, DecodeFull(data));
  return std::move(result.image);
}

Result<JpegData> ReferenceCodec::DecodeToCoefficients(Slice data) {
  ReferenceDecoder decoder(data);
  PCR_RETURN_IF_ERROR(decoder.Parse());
  if (!decoder.have_frame()) {
    return Status::Corruption("no frame header before end of data");
  }
  return decoder.TakeJpegData();
}

}  // namespace pcr::jpeg
