// Entropy-coded segment bit I/O with JPEG byte stuffing: every 0xFF data
// byte is followed by a 0x00 stuff byte on write and the pair is collapsed
// on read; an 0xFF followed by anything else is a marker and terminates the
// entropy data.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "arch/arch.h"
#include "util/logging.h"
#include "util/slice.h"

namespace pcr::jpeg {

/// MSB-first bit writer with byte stuffing.
class BitWriter {
 public:
  explicit BitWriter(std::string* out) : out_(out) {}

  /// Writes the low `count` bits of `bits`, MSB first. count in [0, 24].
  void WriteBits(uint32_t bits, int count) {
    PCR_DCHECK(count >= 0 && count <= 24);
    if (count == 0) return;
    acc_ = (acc_ << count) | (bits & ((1u << count) - 1));
    acc_count_ += count;
    while (acc_count_ >= 8) {
      const uint8_t byte =
          static_cast<uint8_t>((acc_ >> (acc_count_ - 8)) & 0xff);
      EmitByte(byte);
      acc_count_ -= 8;
    }
  }

  void WriteBit(int bit) { WriteBits(bit & 1, 1); }

  /// Pads the final partial byte with 1-bits (per the JPEG spec) and flushes.
  void AlignToByte() {
    if (acc_count_ > 0) {
      const int pad = 8 - acc_count_;
      WriteBits((1u << pad) - 1, pad);
    }
  }

 private:
  void EmitByte(uint8_t byte) {
    out_->push_back(static_cast<char>(byte));
    if (byte == 0xff) out_->push_back('\0');  // Stuff byte.
  }

  std::string* out_;
  uint64_t acc_ = 0;
  int acc_count_ = 0;
};

/// MSB-first bit reader over entropy data, built on a buffered 64-bit
/// accumulator: a bulk refill pulls whole bytes from the input, collapsing
/// 0xFF00 stuffing as it goes, so the per-bit hot path is shift arithmetic
/// only. Stops (reports exhaustion) at a marker (0xFF followed by non-zero)
/// or end of input; a truncated stream is not an error at this layer —
/// partial-scan decode relies on it.
///
/// Peek(n)/Consume(n) expose the accumulator to table-driven decoders
/// (huffman.h): Peek returns the next n bits zero-padded past the end of the
/// data, and Consume flags exhaustion when asked to move past the last real
/// bit, so a decode from phantom padding is always detected.
class BitReader {
 public:
  /// Maximum bits a single Peek/ReadBits may request.
  static constexpr int kMaxPeekBits = 32;

  explicit BitReader(Slice data) : data_(data) {}

  /// Returns the next `count` bits MSB-first without consuming them,
  /// zero-padded if fewer real bits remain. count in [0, kMaxPeekBits].
  uint32_t Peek(int count) {
    PCR_DCHECK(count >= 0 && count <= kMaxPeekBits);
    if (acc_bits_ < count) Refill();
    if (count == 0) return 0;
    if (acc_bits_ >= count) {
      return static_cast<uint32_t>(acc_ >> (acc_bits_ - count));
    }
    // Fewer real bits than requested: left-justify and zero-pad.
    return static_cast<uint32_t>(acc_ << (count - acc_bits_)) &
           ((count >= 32 ? 0u : (1u << count)) - 1u);
  }

  /// Consumes `count` bits. Consuming past the last real bit marks the
  /// reader exhausted (the phantom zero-pad bits of Peek are not data).
  void Consume(int count) {
    if (count == 0) return;  // The mask below needs acc_bits_ <= 63 after.
    if (count <= acc_bits_) {
      acc_bits_ -= count;
      acc_ &= (~uint64_t{0}) >> (64 - 1 - acc_bits_) >> 1;
      return;
    }
    acc_ = 0;
    acc_bits_ = 0;
    exhausted_ = true;
  }

  /// Reads one bit; returns 0 at end of data (the spec's "fill with zero"
  /// behaviour never matters because callers check Exhausted()).
  int ReadBit() {
    if (acc_bits_ == 0) {
      Refill();
      if (acc_bits_ == 0) {
        exhausted_ = true;
        return 0;
      }
    }
    --acc_bits_;
    const int bit = static_cast<int>((acc_ >> acc_bits_) & 1);
    acc_ &= ~(uint64_t{1} << acc_bits_);  // Keep only unconsumed bits valid.
    return bit;
  }

  /// Reads `count` bits MSB-first, zero-padded (and flagged exhausted) past
  /// the end of the data.
  uint32_t ReadBits(int count) {
    const uint32_t v = Peek(count);
    Consume(count);
    return v;
  }

  /// Real (non-phantom) bits that can still be read before exhaustion.
  /// Only refilled lazily: a small return value is exact once the input is
  /// drained, which is the case that matters to truncation handling.
  int BitsAvailable() {
    if (acc_bits_ < kMaxPeekBits) Refill();
    return acc_bits_;
  }

  /// True once a read has run past the end of the entropy data.
  bool Exhausted() const { return exhausted_; }

 private:
  // Tops the accumulator up to > 56 buffered bits (or until the entropy
  // data ends at a marker / end of input), collapsing 0xFF00 stuffing.
  //
  // Word-at-a-time: a SIMD/SWAR scan (arch::Active().find_ff) locates the
  // next 0xFF, and everything before it is stuffing-free, so whole
  // big-endian words append with one load instead of eight byte steps. The
  // cached scan result survives across calls; it only reruns after the
  // cursor passes it (i.e. after a collapsed stuff pair).
  void Refill() {
    const uint8_t* base = data_.udata();
    const size_t size = data_.size();
    while (acc_bits_ <= 56) {
      if (pos_ >= size) return;
      if (next_ff_ == kUnscanned || next_ff_ < pos_) {
        next_ff_ = pos_ + arch::Active().find_ff(base + pos_, size - pos_);
      }
      if (next_ff_ - pos_ >= 8) {
        // At least a full stuffing-free word ahead: bulk-append the bytes
        // that fit (1..8 of them — acc_bits_ <= 56 guarantees at least one).
        uint64_t w;
        std::memcpy(&w, base + pos_, 8);
        w = __builtin_bswap64(w);  // First input byte = most significant.
        const int want = (64 - acc_bits_) >> 3;
        const int take = want * 8;
        acc_ = take == 64 ? w : (acc_ << take) | (w >> (64 - take));
        acc_bits_ += take;
        pos_ += static_cast<size_t>(want);
        continue;
      }
      if (pos_ < next_ff_) {
        acc_ = (acc_ << 8) | base[pos_];
        acc_bits_ += 8;
        ++pos_;
        continue;
      }
      // pos_ == next_ff_: an 0xFF byte.
      if (pos_ + 1 < size && base[pos_ + 1] == 0x00) {
        acc_ = (acc_ << 8) | 0xff;
        acc_bits_ += 8;
        pos_ += 2;  // Passes next_ff_, forcing a rescan next iteration.
        continue;
      }
      return;  // Marker (or lone trailing 0xFF): end of entropy data.
    }
  }

  static constexpr size_t kUnscanned = ~size_t{0};

  Slice data_;
  size_t pos_ = 0;
  size_t next_ff_ = kUnscanned;  // Absolute index of the next 0xFF byte.
  uint64_t acc_ = 0;  // Right-aligned: low acc_bits_ bits are valid.
  int acc_bits_ = 0;
  bool exhausted_ = false;
};

}  // namespace pcr::jpeg
