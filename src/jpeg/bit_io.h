// Entropy-coded segment bit I/O with JPEG byte stuffing: every 0xFF data
// byte is followed by a 0x00 stuff byte on write and the pair is collapsed
// on read; an 0xFF followed by anything else is a marker and terminates the
// entropy data.
#pragma once

#include <cstdint>
#include <string>

#include "util/logging.h"
#include "util/slice.h"

namespace pcr::jpeg {

/// MSB-first bit writer with byte stuffing.
class BitWriter {
 public:
  explicit BitWriter(std::string* out) : out_(out) {}

  /// Writes the low `count` bits of `bits`, MSB first. count in [0, 24].
  void WriteBits(uint32_t bits, int count) {
    PCR_DCHECK(count >= 0 && count <= 24);
    if (count == 0) return;
    acc_ = (acc_ << count) | (bits & ((1u << count) - 1));
    acc_count_ += count;
    while (acc_count_ >= 8) {
      const uint8_t byte =
          static_cast<uint8_t>((acc_ >> (acc_count_ - 8)) & 0xff);
      EmitByte(byte);
      acc_count_ -= 8;
    }
  }

  void WriteBit(int bit) { WriteBits(bit & 1, 1); }

  /// Pads the final partial byte with 1-bits (per the JPEG spec) and flushes.
  void AlignToByte() {
    if (acc_count_ > 0) {
      const int pad = 8 - acc_count_;
      WriteBits((1u << pad) - 1, pad);
    }
  }

 private:
  void EmitByte(uint8_t byte) {
    out_->push_back(static_cast<char>(byte));
    if (byte == 0xff) out_->push_back('\0');  // Stuff byte.
  }

  std::string* out_;
  uint64_t acc_ = 0;
  int acc_count_ = 0;
};

/// MSB-first bit reader over entropy data. Stops (reports exhaustion) at a
/// marker (0xFF followed by non-zero) or end of input; a truncated stream is
/// not an error at this layer — partial-scan decode relies on it.
class BitReader {
 public:
  explicit BitReader(Slice data) : data_(data) {}

  /// Reads one bit; returns 0 at end of data (the spec's "fill with zero"
  /// behaviour never matters because callers check Exhausted()).
  int ReadBit() {
    if (bit_count_ == 0 && !FillByte()) {
      exhausted_ = true;
      return 0;
    }
    --bit_count_;
    return (current_ >> bit_count_) & 1;
  }

  /// Reads `count` bits MSB-first.
  uint32_t ReadBits(int count) {
    uint32_t v = 0;
    for (int i = 0; i < count; ++i) v = (v << 1) | ReadBit();
    return v;
  }

  /// True once a read has run past the end of the entropy data.
  bool Exhausted() const { return exhausted_; }

  /// Number of entropy bytes consumed so far (including stuff bytes).
  size_t BytesConsumed() const { return pos_; }

 private:
  bool FillByte() {
    while (pos_ < data_.size()) {
      const uint8_t byte = static_cast<uint8_t>(data_[pos_]);
      if (byte == 0xff) {
        if (pos_ + 1 < data_.size() &&
            static_cast<uint8_t>(data_[pos_ + 1]) == 0x00) {
          current_ = 0xff;
          bit_count_ = 8;
          pos_ += 2;
          return true;
        }
        return false;  // Marker: end of entropy data.
      }
      current_ = byte;
      bit_count_ = 8;
      ++pos_;
      return true;
    }
    return false;
  }

  Slice data_;
  size_t pos_ = 0;
  uint32_t current_ = 0;
  int bit_count_ = 0;
  bool exhausted_ = false;
};

}  // namespace pcr::jpeg
