// Reference JPEG decode path — the test oracle the fast path is diffed
// against, kept deliberately naive:
//
//  - ReferenceBitReader: the seed's byte-at-a-time bit reader (one FillByte
//    per 8 bits, stuffing collapsed a byte at a time), no accumulator.
//  - Huffman decoding: the canonical per-length bit-by-bit walk
//    (HuffTable::DecodeSymbolBitwise), never the lookup table.
//  - Rendering: per-block IDCT with no short-circuits, per-pixel chroma
//    upsampling and scalar color conversion (ycc::ToRgb), no row pointers,
//    no reusable scratch.
//
// Both paths share the spec state machine (decoder_impl.h) and the
// fixed-point arithmetic definitions (dct.h, color.h), so the parity suite
// asserts bit-exact coefficients AND pixels; the double-precision
// InverseDct8x8 remains the accuracy oracle for the fixed-point IDCT
// itself (jpeg_test.cc).
#pragma once

#include "jpeg/codec.h"
#include "util/result.h"
#include "util/slice.h"

namespace pcr::jpeg {

/// The original unbuffered MSB-first bit reader over entropy data. Same
/// observable contract as BitReader (zero fill + Exhausted() past the end,
/// stop at markers), structurally independent implementation.
class ReferenceBitReader {
 public:
  explicit ReferenceBitReader(Slice data) : data_(data) {}

  int ReadBit() {
    if (bit_count_ == 0 && !FillByte()) {
      exhausted_ = true;
      return 0;
    }
    --bit_count_;
    return (current_ >> bit_count_) & 1;
  }

  uint32_t ReadBits(int count) {
    uint32_t v = 0;
    for (int i = 0; i < count; ++i) v = (v << 1) | ReadBit();
    return v;
  }

  bool Exhausted() const { return exhausted_; }

 private:
  bool FillByte() {
    while (pos_ < data_.size()) {
      const uint8_t byte = static_cast<uint8_t>(data_[pos_]);
      if (byte == 0xff) {
        if (pos_ + 1 < data_.size() &&
            static_cast<uint8_t>(data_[pos_ + 1]) == 0x00) {
          current_ = 0xff;
          bit_count_ = 8;
          pos_ += 2;
          return true;
        }
        return false;  // Marker: end of entropy data.
      }
      current_ = byte;
      bit_count_ = 8;
      ++pos_;
      return true;
    }
    return false;
  }

  Slice data_;
  size_t pos_ = 0;
  uint32_t current_ = 0;
  int bit_count_ = 0;
  bool exhausted_ = false;
};

/// Reference decode entry points, mirroring the fast ones in codec.h.
struct ReferenceCodec {
  static Result<DecodeResult> DecodeFull(Slice data);
  static Result<Image> Decode(Slice data);
  static Result<JpegData> DecodeToCoefficients(Slice data);
  /// Naive render: same fixed-point kernels, straight-line per-pixel code.
  static Image RenderCoefficients(const JpegData& data);
};

}  // namespace pcr::jpeg
