// Progressive scan scripts. The default mirrors libjpeg's
// jpeg_simple_progression(): 10 scans for 3-component images — the exact
// script the paper's datasets were encoded with ("With the default settings,
// each JPEG is broken up into 10 scans").
#pragma once

#include <vector>

#include "jpeg/coeff_image.h"

namespace pcr::jpeg {

/// The libjpeg default progressive script.
///
/// For 3 components:
///   1. DC  {Y,Cb,Cr}  Ss=0 Se=0  Ah=0 Al=1
///   2. AC  Y   1..5            Ah=0 Al=2
///   3. AC  Cr  1..63           Ah=0 Al=1
///   4. AC  Cb  1..63           Ah=0 Al=1
///   5. AC  Y   6..63           Ah=0 Al=2
///   6. AC  Y   1..63           Ah=2 Al=1   (refinement)
///   7. DC  {Y,Cb,Cr}           Ah=1 Al=0   (refinement)
///   8. AC  Cr  1..63           Ah=1 Al=0   (refinement)
///   9. AC  Cb  1..63           Ah=1 Al=0   (refinement)
///  10. AC  Y   1..63           Ah=1 Al=0   (refinement)
///
/// For 1 component the chroma scans drop out (6 scans).
std::vector<ScanSpec> DefaultProgressiveScript(int num_components);

/// Single full-spectrum scan per component set — the baseline (sequential)
/// "script" used internally for uniformity.
std::vector<ScanSpec> BaselineScript(int num_components);

/// Validates a script against T.81 progressive constraints (DC-only may be
/// interleaved, AC scans single-component, refinement windows consistent).
bool ValidateProgressiveScript(const std::vector<ScanSpec>& script,
                               int num_components);

}  // namespace pcr::jpeg
