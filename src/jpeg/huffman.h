// Huffman coding for JPEG entropy segments: canonical code construction from
// a (bits, values) spec, encode/decode, and optimal table generation from
// symbol frequencies (ITU-T T.81 Annex K.2), which is what makes progressive
// output smaller than baseline in practice (jpegtran always optimizes).
//
// Decoding is table-driven: an 8-bit lookup table maps the next peeked bits
// straight to (symbol, code length) for the short codes that dominate real
// streams, with the canonical per-length walk (F.2.2.3) as the slow path for
// longer codes. The bit-by-bit walk is also exposed on its own
// (DecodeSymbolBitwise) as the reference path the parity tests diff against.
#pragma once

#include <array>
#include <cstdint>

#include "jpeg/bit_io.h"
#include "jpeg/constants.h"
#include "util/result.h"

namespace pcr::jpeg {

/// A built Huffman table usable for both encoding and decoding. Holds no
/// heap memory, so decoders can keep tables in reusable slots without
/// per-stream allocation.
class HuffTable {
 public:
  /// Codes of up to this many bits decode with a single table lookup.
  static constexpr int kLookupBits = 8;

  HuffTable() = default;

  /// Builds from a JPEG (bits[16], values[]) table definition.
  static Result<HuffTable> FromSpec(const uint8_t bits[16],
                                    const uint8_t* values, int num_values);
  static Result<HuffTable> FromSpec(const HuffSpec& spec) {
    return FromSpec(spec.bits, spec.values, spec.num_values);
  }

  /// Encodes symbol `sym` (must be present in the table).
  void EncodeSymbol(BitWriter* writer, int sym) const {
    PCR_DCHECK(code_len_[sym] > 0) << "symbol not in table: " << sym;
    writer->WriteBits(code_[sym], code_len_[sym]);
  }

  /// Decodes the next symbol; returns -1 on exhausted or invalid input. The
  /// two cases are distinguishable through reader->Exhausted(): true means
  /// the stream ran out of bits mid-code (truncation, not an error for
  /// partial-scan decoding), false means the bits do not form a valid code
  /// (corruption). A code that would only complete using the zero padding
  /// past the end of the data counts as truncation, never as a decode.
  int DecodeSymbol(BitReader* reader) const {
    const uint16_t entry = lut_[reader->Peek(kLookupBits)];
    if (entry != 0) {
      // Consume flags exhaustion when the code is longer than the buffered
      // bits — after Peek(kLookupBits) that can only mean the input is
      // drained and the code would complete on phantom padding.
      reader->Consume(entry >> 8);
      if (reader->Exhausted()) return -1;
      return entry & 0xff;
    }
    return DecodeSymbolBitwise(reader);
  }

  /// Reference decode path: the canonical bit-by-bit walk of F.2.2.3, one
  /// ReadBit per code bit, usable with any reader exposing ReadBit() and
  /// Exhausted(). Same -1 / Exhausted() contract as DecodeSymbol.
  template <class Reader>
  int DecodeSymbolBitwise(Reader* reader) const {
    int32_t code = reader->ReadBit();
    int l = 1;
    while (l <= 16 && (max_code_[l] < 0 || code > max_code_[l])) {
      code = (code << 1) | reader->ReadBit();
      ++l;
    }
    if (l > 16 || reader->Exhausted()) return -1;
    const int idx = val_ptr_[l] + (code - min_code_[l]);
    if (idx < 0 || idx >= num_values_) return -1;
    return values_[idx];
  }

  bool HasSymbol(int sym) const {
    return sym >= 0 && sym < 256 && code_len_[sym] > 0;
  }

  /// Serialized (bits, values) form for DHT emission.
  const std::array<uint8_t, 16>& bits() const { return bits_; }
  const uint8_t* values() const { return values_.data(); }
  int num_values() const { return num_values_; }

 private:
  // Encode side.
  std::array<uint16_t, 256> code_{};
  std::array<uint8_t, 256> code_len_{};
  // Decode side (per code length l in 1..16).
  std::array<int32_t, 17> min_code_{};
  std::array<int32_t, 17> max_code_{};  // -1 where no codes of that length.
  std::array<int32_t, 17> val_ptr_{};
  // Fast decode side: peeked kLookupBits bits -> (length << 8) | symbol for
  // codes of <= kLookupBits bits; 0 means "no short code" (slow path).
  std::array<uint16_t, 1 << kLookupBits> lut_{};
  // Spec form.
  std::array<uint8_t, 16> bits_{};
  std::array<uint8_t, 256> values_{};
  int num_values_ = 0;
};

/// Accumulates symbol frequencies and derives an optimal length-limited
/// (<=16 bits) Huffman table per Annex K.2.
class HuffFrequencies {
 public:
  void Count(int sym) { ++freq_[sym]; }
  bool Empty() const;

  /// Builds the optimal table. At least one symbol must have been counted
  /// (a table with a single dummy symbol is produced otherwise).
  Result<HuffTable> BuildOptimal() const;

 private:
  std::array<int64_t, 257> freq_{};  // [256] reserved per K.2.
};

}  // namespace pcr::jpeg
