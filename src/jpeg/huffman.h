// Huffman coding for JPEG entropy segments: canonical code construction from
// a (bits, values) spec, encode/decode, and optimal table generation from
// symbol frequencies (ITU-T T.81 Annex K.2), which is what makes progressive
// output smaller than baseline in practice (jpegtran always optimizes).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "jpeg/bit_io.h"
#include "jpeg/constants.h"
#include "util/result.h"

namespace pcr::jpeg {

/// A built Huffman table usable for both encoding and decoding.
class HuffTable {
 public:
  HuffTable() = default;

  /// Builds from a JPEG (bits[16], values[]) table definition.
  static Result<HuffTable> FromSpec(const uint8_t bits[16],
                                    const uint8_t* values, int num_values);
  static Result<HuffTable> FromSpec(const HuffSpec& spec) {
    return FromSpec(spec.bits, spec.values, spec.num_values);
  }

  /// Encodes symbol `sym` (must be present in the table).
  void EncodeSymbol(BitWriter* writer, int sym) const {
    PCR_DCHECK(code_len_[sym] > 0) << "symbol not in table: " << sym;
    writer->WriteBits(code_[sym], code_len_[sym]);
  }

  /// Decodes the next symbol; returns -1 on exhausted/invalid input.
  int DecodeSymbol(BitReader* reader) const;

  bool HasSymbol(int sym) const {
    return sym >= 0 && sym < 256 && code_len_[sym] > 0;
  }

  /// Serialized (bits, values) form for DHT emission.
  const std::array<uint8_t, 16>& bits() const { return bits_; }
  const std::vector<uint8_t>& values() const { return values_; }

 private:
  // Encode side.
  std::array<uint16_t, 256> code_{};
  std::array<uint8_t, 256> code_len_{};
  // Decode side (per code length l in 1..16).
  std::array<int32_t, 17> min_code_{};
  std::array<int32_t, 17> max_code_{};  // -1 where no codes of that length.
  std::array<int32_t, 17> val_ptr_{};
  // Spec form.
  std::array<uint8_t, 16> bits_{};
  std::vector<uint8_t> values_;
};

/// Accumulates symbol frequencies and derives an optimal length-limited
/// (<=16 bits) Huffman table per Annex K.2.
class HuffFrequencies {
 public:
  void Count(int sym) { ++freq_[sym]; }
  bool Empty() const;

  /// Builds the optimal table. At least one symbol must have been counted
  /// (a table with a single dummy symbol is produced otherwise).
  Result<HuffTable> BuildOptimal() const;

 private:
  std::array<int64_t, 257> freq_{};  // [256] reserved per K.2.
};

}  // namespace pcr::jpeg
