// Public JPEG codec API: baseline and progressive encoding, full and partial
// decoding, coefficient-level access, and lossless baseline->progressive
// transcoding (the role jpegtran plays in the paper).
#pragma once

#include <string>
#include <vector>

#include "image/color.h"
#include "image/image.h"
#include "jpeg/coeff_image.h"
#include "jpeg/scan_script.h"
#include "util/result.h"
#include "util/slice.h"

namespace pcr::jpeg {

/// Encoder configuration.
struct EncodeOptions {
  int quality = 90;  // libjpeg-style 1..100.
  ChromaSubsampling subsampling = ChromaSubsampling::k420;
  bool progressive = false;
  /// Build per-scan optimal Huffman tables (always on for progressive, like
  /// jpegtran; optional for baseline where Annex K tables are the default).
  bool optimize_huffman = false;
  /// Custom progressive scan script; empty selects the libjpeg default
  /// (10 scans for color).
  std::vector<ScanSpec> scan_script;
};

/// Coefficient-level representation of a parsed or about-to-be-encoded JPEG.
struct JpegData {
  FrameInfo frame;
  std::vector<QuantTable> quant_tables;  // Indexed by slot; size >= slots used.
  CoeffImage coefficients;
};

/// Result of a (possibly partial) decode.
struct DecodeResult {
  Image image;
  FrameInfo frame;
  int scans_decoded = 0;
  /// True when an EOI was reached after a script-complete set of scans
  /// brought every coefficient to full precision.
  bool complete = false;
  /// Kernel tier that rendered the pixels ("scalar"/"sse2"/"avx2" — see
  /// arch/arch.h). Static string, informational.
  const char* kernel_isa = "scalar";
};

/// Reusable decode buffers. A decoder thread that keeps one DecodeScratch
/// across calls pays zero heap allocation for coefficient planes and
/// YCbCr staging once shapes repeat (the common same-sized-dataset case) —
/// only the returned Image is freshly allocated. Not thread-safe; use one
/// per thread.
struct DecodeScratch {
  CoeffImage coeffs;
  PlanarImage planar;
  ColorScratch color;
};

/// Compresses an image. Color images become YCbCr 3-component JPEGs,
/// grayscale stays single-component.
Result<std::string> Encode(const Image& img, const EncodeOptions& options);

/// Decodes as much of `data` as available: truncated progressive streams
/// (or streams terminated early with EOI — the PCR case) yield the best
/// reconstruction from the scans present. `scratch` may be null.
Result<DecodeResult> DecodeFull(Slice data, DecodeScratch* scratch = nullptr);

/// Convenience wrapper returning just the pixels.
Result<Image> Decode(Slice data, DecodeScratch* scratch = nullptr);

/// Parses a JPEG down to quantized coefficients without the inverse DCT.
Result<JpegData> DecodeToCoefficients(Slice data);

/// Entropy-encodes existing coefficients. `script` empty selects baseline
/// (progressive=false) or the default progressive script. Progressive output
/// always uses per-scan optimal Huffman tables; `optimize_huffman` also
/// enables them for baseline output.
Result<std::string> EncodeFromData(const JpegData& data, bool progressive,
                                   std::vector<ScanSpec> script = {},
                                   bool optimize_huffman = false);

/// Losslessly converts a (baseline or progressive) JPEG into a progressive
/// one with the default 10-scan script, exactly like
/// `jpegtran -progressive`: coefficients are bit-identical.
Result<std::string> TranscodeToProgressive(Slice data);

/// Renders pixels from coefficient-level data (dequantize + fixed-point
/// IDCT + integer color convert). Used after partial scan assembly.
/// `scratch` may be null.
Image RenderCoefficients(const JpegData& data,
                         DecodeScratch* scratch = nullptr);

}  // namespace pcr::jpeg
