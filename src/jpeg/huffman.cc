#include "jpeg/huffman.h"

#include <algorithm>
#include <cstring>

#include "util/status.h"

namespace pcr::jpeg {

Result<HuffTable> HuffTable::FromSpec(const uint8_t bits[16],
                                      const uint8_t* values, int num_values) {
  HuffTable t;
  std::copy(bits, bits + 16, t.bits_.begin());

  int total = 0;
  for (int i = 0; i < 16; ++i) total += bits[i];
  if (total != num_values || total > 256 || num_values < 0) {
    return Status::Corruption("huffman table: bits/values mismatch");
  }
  std::copy(values, values + num_values, t.values_.begin());
  t.num_values_ = num_values;

  // Generate canonical code lengths and codes (C.2 of T.81).
  std::vector<uint8_t> huffsize;
  huffsize.reserve(total);
  for (int l = 1; l <= 16; ++l) {
    for (int i = 0; i < bits[l - 1]; ++i) {
      huffsize.push_back(static_cast<uint8_t>(l));
    }
  }
  std::vector<uint16_t> huffcode(total);
  {
    uint32_t code = 0;
    int si = huffsize.empty() ? 0 : huffsize[0];
    size_t k = 0;
    while (k < huffsize.size()) {
      while (k < huffsize.size() && huffsize[k] == si) {
        if (code >= (1u << si)) {
          return Status::Corruption("huffman table: code overflow");
        }
        huffcode[k] = static_cast<uint16_t>(code);
        ++code;
        ++k;
      }
      code <<= 1;
      ++si;
    }
  }

  // Encode-side lookup.
  for (size_t k = 0; k < huffsize.size(); ++k) {
    const int sym = t.values_[k];
    t.code_[sym] = huffcode[k];
    t.code_len_[sym] = huffsize[k];
  }

  // Decode-side tables (F.2.2.3).
  int p = 0;
  for (int l = 1; l <= 16; ++l) {
    if (bits[l - 1] > 0) {
      t.val_ptr_[l] = p;
      t.min_code_[l] = huffcode[p];
      p += bits[l - 1];
      t.max_code_[l] = huffcode[p - 1];
    } else {
      t.max_code_[l] = -1;
    }
  }

  // Fast decode LUT: every kLookupBits-bit window starting with a short code
  // maps directly to (length, symbol); all 2^(kLookupBits - len) suffixes of
  // a len-bit code share its entry.
  for (size_t k = 0; k < huffsize.size(); ++k) {
    const int len = huffsize[k];
    if (len > kLookupBits) break;  // huffsize is sorted by length.
    const uint16_t entry =
        static_cast<uint16_t>((len << 8) | t.values_[k]);
    const uint32_t base = static_cast<uint32_t>(huffcode[k])
                          << (kLookupBits - len);
    for (uint32_t fill = 0; fill < (1u << (kLookupBits - len)); ++fill) {
      t.lut_[base | fill] = entry;
    }
  }
  return t;
}

bool HuffFrequencies::Empty() const {
  for (int i = 0; i < 256; ++i) {
    if (freq_[i] > 0) return false;
  }
  return true;
}

Result<HuffTable> HuffFrequencies::BuildOptimal() const {
  // Annex K.2 algorithm, as implemented by libjpeg's jpeg_gen_optimal_table.
  std::array<int64_t, 257> freq = freq_;
  freq[256] = 1;  // Reserve one code point so no real code is all-ones.

  std::array<int, 257> codesize{};
  std::array<int, 258> others{};
  others.fill(-1);

  for (;;) {
    // Find the two least-frequent nonzero symbols (c1 lowest, c2 next).
    int c1 = -1, c2 = -1;
    int64_t v1 = INT64_MAX, v2 = INT64_MAX;
    for (int i = 0; i <= 256; ++i) {
      if (freq[i] == 0) continue;
      if (freq[i] <= v1) {
        v2 = v1;
        c2 = c1;
        v1 = freq[i];
        c1 = i;
      } else if (freq[i] <= v2) {
        v2 = freq[i];
        c2 = i;
      }
    }
    if (c2 < 0) break;  // Single tree remains.

    freq[c1] += freq[c2];
    freq[c2] = 0;

    ++codesize[c1];
    while (others[c1] >= 0) {
      c1 = others[c1];
      ++codesize[c1];
    }
    others[c1] = c2;
    ++codesize[c2];
    while (others[c2] >= 0) {
      c2 = others[c2];
      ++codesize[c2];
    }
  }

  std::array<int, 33> bits{};
  for (int i = 0; i <= 256; ++i) {
    if (codesize[i] > 0) {
      if (codesize[i] > 32) {
        return Status::Corruption("huffman optimal: code too long");
      }
      ++bits[codesize[i]];
    }
  }

  // Limit code lengths to 16 (K.2 adjustment).
  for (int i = 32; i > 16; --i) {
    while (bits[i] > 0) {
      int j = i - 2;
      while (bits[j] == 0) --j;
      bits[i] -= 2;
      ++bits[i - 1];
      bits[j + 1] += 2;
      --bits[j];
    }
  }
  // Remove the reserved code point.
  int i = 16;
  while (i > 0 && bits[i] == 0) --i;
  if (i > 0) --bits[i];

  // Sort symbols by code size, then value.
  std::vector<uint8_t> values;
  for (int size = 1; size <= 32; ++size) {
    for (int sym = 0; sym < 256; ++sym) {
      if (codesize[sym] == size) values.push_back(static_cast<uint8_t>(sym));
    }
  }

  uint8_t bits8[16];
  for (int l = 1; l <= 16; ++l) bits8[l - 1] = static_cast<uint8_t>(bits[l]);
  return HuffTable::FromSpec(bits8, values.data(),
                             static_cast<int>(values.size()));
}

}  // namespace pcr::jpeg
