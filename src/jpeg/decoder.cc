// Production JPEG decode path: DecoderT instantiated with the buffered
// 64-bit BitReader (table-driven Huffman via HuffTable::DecodeSymbol) and an
// allocation-free renderer — fixed-point IDCT with an all-AC-zero
// short-circuit, integer chroma upsample and table-driven color conversion.
// The spec state machine itself lives in decoder_impl.h, shared with the
// reference decoder (reference_codec.cc) that the parity tests diff against.
#include <algorithm>
#include <cstring>

#include "arch/arch.h"
#include "jpeg/codec.h"
#include "jpeg/decoder_impl.h"

namespace pcr::jpeg {

namespace {

using FastDecoder = internal::DecoderT<BitReader>;

// Renders one component plane from its coefficient blocks. Interior blocks
// IDCT straight into the plane at its stride; edge blocks go through an
// 8x8 staging buffer; all-AC-zero blocks flat-fill without a transform
// (bit-exact with the general path by construction of InverseDct8x8Fixed).
void RenderComponent(const ComponentInfo& info, const QuantTable& qtbl,
                     const CoeffImage& coeffs, int comp, Plane* plane) {
  const arch::Kernels& k = arch::Active();
  const int stride = plane->width();
  alignas(32) int32_t dq[64];
  alignas(32) uint8_t staged[64];
  for (int by = 0; by < info.height_blocks; ++by) {
    const int y0 = by * 8;
    const int y_limit = std::min(8, info.height - y0);
    for (int bx = 0; bx < info.width_blocks; ++bx) {
      const int x0 = bx * 8;
      const int x_limit = std::min(8, info.width - x0);
      const CoeffBlock& block = coeffs.block(comp, bx, by);
      uint8_t* dst = plane->data() + static_cast<size_t>(y0) * stride + x0;

      if (internal::AcAllZero(block)) {
        // DC-only block: one descale, flat fill. Equals what the IDCT
        // produces for this input, so the fast path changes no pixel.
        const int64_t dc =
            std::clamp<int64_t>(static_cast<int64_t>(block[0]) * qtbl[0],
                                -kMaxDequantizedCoeff, kMaxDequantizedCoeff);
        const int64_t level = ((dc + 4) >> 3) + 128;
        const uint8_t v =
            level < 0 ? 0 : (level > 255 ? 255 : static_cast<uint8_t>(level));
        for (int y = 0; y < y_limit; ++y) {
          std::memset(dst + static_cast<size_t>(y) * stride, v,
                      static_cast<size_t>(x_limit));
        }
        continue;
      }

      internal::DequantizeBlock(block, qtbl, dq);
      if (x_limit == 8 && y_limit == 8) {
        k.idct8x8(dq, dst, stride);
      } else {
        k.idct8x8(dq, staged, 8);
        for (int y = 0; y < y_limit; ++y) {
          std::memcpy(dst + static_cast<size_t>(y) * stride, staged + y * 8,
                      static_cast<size_t>(x_limit));
        }
      }
    }
  }
}

Image RenderFromCoefficients(const FrameInfo& frame, const QuantTable* qtables,
                             const CoeffImage& coeffs,
                             DecodeScratch* scratch) {
  PlanarImage own_planar;
  PlanarImage& planar = scratch != nullptr ? scratch->planar : own_planar;
  planar.full_width = frame.width;
  planar.full_height = frame.height;
  planar.planes.resize(frame.components.size());

  for (size_t c = 0; c < frame.components.size(); ++c) {
    const auto& info = frame.components[c];
    planar.planes[c].Reset(info.width, info.height);
    RenderComponent(info, qtables[info.quant_tbl], coeffs,
                    static_cast<int>(c), &planar.planes[c]);
  }
  return YcbcrToRgb(planar, scratch != nullptr ? &scratch->color : nullptr);
}

}  // namespace

Image RenderCoefficients(const JpegData& data, DecodeScratch* scratch) {
  return RenderFromCoefficients(data.frame, data.quant_tables.data(),
                                data.coefficients, scratch);
}

Result<DecodeResult> DecodeFull(Slice data, DecodeScratch* scratch) {
  FastDecoder decoder(data, scratch);
  PCR_RETURN_IF_ERROR(decoder.Parse());
  if (!decoder.have_frame()) {
    return Status::Corruption("no frame header before end of data");
  }
  DecodeResult result;
  result.frame = decoder.frame();
  result.scans_decoded = decoder.scans_decoded();
  result.complete = decoder.complete();
  result.kernel_isa = arch::Active().name;
  result.image =
      RenderFromCoefficients(decoder.frame(), decoder.quant_tables(),
                             decoder.coefficients(), scratch);
  return result;
}

Result<Image> Decode(Slice data, DecodeScratch* scratch) {
  PCR_ASSIGN_OR_RETURN(DecodeResult result, DecodeFull(data, scratch));
  return std::move(result.image);
}

Result<JpegData> DecodeToCoefficients(Slice data) {
  FastDecoder decoder(data);
  PCR_RETURN_IF_ERROR(decoder.Parse());
  if (!decoder.have_frame()) {
    return Status::Corruption("no frame header before end of data");
  }
  return decoder.TakeJpegData();
}

Result<std::string> TranscodeToProgressive(Slice data) {
  PCR_ASSIGN_OR_RETURN(JpegData jdata, DecodeToCoefficients(data));
  return EncodeFromData(jdata, /*progressive=*/true);
}

}  // namespace pcr::jpeg
